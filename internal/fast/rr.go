package fast

import (
	"rrnorm/internal/core"
	"rrnorm/internal/queue"
)

// rrState is the Round Robin sweep state. admit/complete are methods on a
// stack-local value rather than closures so that workspace-reuse runs stay
// allocation-free (captured-variable closures escape to the heap).
type rrState struct {
	res  *core.Result
	h    *queue.PairHeap
	tol  []float64 // tol[i] = CompletionTol(Jobs[i].Size), precomputed
	now  float64
	V    float64 // cumulative per-job fair share
	next int     // next arrival index

	obs core.Observer // nil when no observer attached
	ep  *core.Epoch   // workspace-held epoch for allocation-free dispatch
}

// admit moves all jobs released by now into the heap; degenerate
// (sub-tolerance size) jobs complete at admission, mirroring core.Run.
func (r *rrState) admit() {
	jobs := r.res.Jobs
	for r.next < len(jobs) && jobs[r.next].Release <= r.now {
		j := &jobs[r.next]
		if r.obs != nil {
			r.obs.ObserveArrival(r.now, r.next, *j)
		}
		if j.Size <= r.tol[r.next] {
			r.res.Completion[r.next] = r.now
			r.res.Flow[r.next] = r.now - j.Release
			if r.obs != nil {
				r.obs.ObserveCompletion(r.now, r.next, r.now-j.Release)
			}
		} else {
			r.h.Push(r.next, r.V+j.Size)
		}
		r.next++
	}
}

// complete pops every job whose remaining work target−V is within its
// completion tolerance — the same boundary-check semantics as the
// reference engine applies at the end of each step.
func (r *rrState) complete() {
	jobs := r.res.Jobs
	for r.h.Len() > 0 {
		j, key := r.h.Min()
		if key-r.V > r.tol[j] {
			return
		}
		r.h.PopMin()
		r.res.Completion[j] = r.now
		r.res.Flow[j] = r.now - jobs[j].Release
		if r.obs != nil {
			r.obs.ObserveCompletion(r.now, j, r.res.Flow[j])
		}
	}
}

// epoch emits the rate-constant interval [r.now, end) to the observer.
// Under RR every alive job shares min(1, m/alive) of a machine, so the
// pre-speed rate sum is min(alive, m).
func (r *rrState) epoch(end float64, m int) {
	alive := r.h.Len()
	rs := float64(alive)
	if alive > m {
		rs = float64(m)
	}
	emitEpoch(r.obs, r.ep, r.now, end, alive, rs)
}

// runRR simulates Round Robin in O((n + completions) log n) with
// incremental virtual-time ("fair share") accounting.
//
// Under RR every alive job accrues work at the identical rate
// ρ(t) = min{1, m/n_t}·s, so with V(t) = ∫ ρ(τ) dτ (the cumulative fair
// share) a job admitted at time t₀ with size p completes exactly when V
// reaches V(t₀) + p. Arrivals and completions are therefore the only
// events: the next completion is the smallest completion target in a
// min-heap of (target, job) pairs, and between consecutive events ρ is
// constant, so each event costs O(log n) instead of the reference
// engine's O(n_t) rate recomputation.
//
// res comes from Workspace.StartRun (jobs validated and normalized); h
// and tol are the workspace's reusable completion heap and tolerance
// buffer, ep the workspace's reusable observer epoch.
func runRR(res *core.Result, opts core.Options, h *queue.PairHeap, tol []float64, ep *core.Epoch) error {
	n := len(res.Jobs)
	if n == 0 {
		return nil
	}
	h.Reuse(n)
	for i := range res.Jobs {
		tol[i] = core.CompletionTol(res.Jobs[i].Size)
	}
	r := rrState{res: res, h: h, tol: tol, now: res.Jobs[0].Release, obs: opts.Observer, ep: ep}

	r.admit()
	r.complete()
	res.Events++
	for h.Len() > 0 || r.next < n {
		res.Events++
		if res.Events&(ctxStride-1) == 0 {
			if err := core.Canceled(opts.Context, r.now, res.Events); err != nil {
				return err
			}
		}
		if h.Len() == 0 {
			// Idle gap: jump to the next arrival; V does not advance.
			r.now = res.Jobs[r.next].Release
			r.admit()
			r.complete()
			continue
		}
		// rate = speed · min(1, m/alive), spelled as a branch: m and alive
		// are small ints, so m/alive is exact when it matters (alive ≤ m ⇒
		// factor 1) and math.Min's NaN handling is dead weight here.
		rate := opts.Speed
		if alive := h.Len(); alive > opts.Machines {
			rate *= float64(opts.Machines) / float64(alive)
		}
		_, minKey := h.Min()
		tC := r.now + (minKey-r.V)/rate
		if tC < r.now {
			tC = r.now // guard against cancellation in minKey−V
		}
		if r.next < n && res.Jobs[r.next].Release < tC {
			// Next event is an arrival: advance the fair share to it.
			t := res.Jobs[r.next].Release
			r.epoch(t, opts.Machines)
			r.V += (t - r.now) * rate
			r.now = t
			r.admit()
		} else {
			// Next event is a completion: land V exactly on the target so
			// simultaneous completions (identical targets) drain together.
			r.epoch(tC, opts.Machines)
			r.V = minKey
			r.now = tC
		}
		r.complete()
	}
	return nil
}

package fast

import (
	"math"

	"rrnorm/internal/core"
	"rrnorm/internal/queue"
)

// runRR simulates Round Robin in O((n + completions) log n) with
// incremental virtual-time ("fair share") accounting.
//
// Under RR every alive job accrues work at the identical rate
// ρ(t) = min{1, m/n_t}·s, so with V(t) = ∫ ρ(τ) dτ (the cumulative fair
// share) a job admitted at time t₀ with size p completes exactly when V
// reaches V(t₀) + p. Arrivals and completions are therefore the only
// events: the next completion is the smallest completion target in an
// indexed min-heap, and between consecutive events ρ is constant, so each
// event costs O(log n) instead of the reference engine's O(n_t) rate
// recomputation.
//
// The instance must already be validated and normalized (fast.Run does
// both).
func runRR(in *core.Instance, name string, opts core.Options) (*core.Result, error) {
	n := in.N()
	res := &core.Result{
		Policy:     name,
		Machines:   opts.Machines,
		Speed:      opts.Speed,
		Jobs:       in.Jobs,
		Completion: make([]float64, n),
		Flow:       make([]float64, n),
	}
	if n == 0 {
		return res, nil
	}

	var (
		h    = queue.NewIndexedMinHeap(n) // alive jobs keyed by completion target V(t₀)+p
		now  = in.Jobs[0].Release
		V    = 0.0 // cumulative per-job fair share
		next = 0   // next arrival index
	)
	// admit moves all jobs released by `now` into the heap; degenerate
	// (sub-tolerance size) jobs complete at admission, mirroring core.Run.
	admit := func() {
		for next < n && in.Jobs[next].Release <= now {
			j := &in.Jobs[next]
			if j.Size <= core.CompletionTol(j.Size) {
				res.Completion[next] = now
				res.Flow[next] = now - j.Release
			} else {
				h.Push(next, V+j.Size)
			}
			next++
		}
	}
	// complete pops every job whose remaining work target−V is within its
	// completion tolerance — the same boundary-check semantics as the
	// reference engine applies at the end of each step.
	complete := func() {
		for h.Len() > 0 {
			j, key := h.Min()
			if key-V > core.CompletionTol(in.Jobs[j].Size) {
				return
			}
			h.PopMin()
			res.Completion[j] = now
			res.Flow[j] = now - in.Jobs[j].Release
		}
	}

	admit()
	complete()
	res.Events++
	for h.Len() > 0 || next < n {
		res.Events++
		if res.Events&(ctxStride-1) == 0 {
			if err := core.Canceled(opts.Context, now, res.Events); err != nil {
				return nil, err
			}
		}
		if h.Len() == 0 {
			// Idle gap: jump to the next arrival; V does not advance.
			now = in.Jobs[next].Release
			admit()
			complete()
			continue
		}
		rate := opts.Speed * math.Min(1, float64(opts.Machines)/float64(h.Len()))
		_, minKey := h.Min()
		tC := now + (minKey-V)/rate
		if tC < now {
			tC = now // guard against cancellation in minKey−V
		}
		if next < n && in.Jobs[next].Release < tC {
			// Next event is an arrival: advance the fair share to it.
			t := in.Jobs[next].Release
			V += (t - now) * rate
			now = t
			admit()
		} else {
			// Next event is a completion: land V exactly on the target so
			// simultaneous completions (identical targets) drain together.
			V = minKey
			now = tC
		}
		complete()
	}
	return res, nil
}

package fast

import (
	"math"

	"rrnorm/internal/core"
)

// runStepped is the stepped top-m event loop — one loop iteration per
// event, the pre-bulk-advance implementation kept verbatim as the
// differential baseline for topmRun.run's batched drain, exactly as
// runRRStepped is for the RR paths. SetSteppedAdvance(true) routes runs
// here; the property wall in internal/check holds the two byte-identical.
//
//rrlint:hotpath
func (r *topmRun) runStepped(opts core.Options) error {
	cur, s := r.cur, r.s
	m, sp := opts.Machines, opts.Speed
	if !cur.More() {
		return cur.Err()
	}
	ord := &s.ord
	byC, worst, waiting := &s.byC, &s.worst, &s.waiting
	obs := r.obs
	now := cur.Head().Release
	events := 0

	for byC.Len() > 0 || waiting.Len() > 0 || cur.More() {
		if err := cur.Err(); err != nil {
			return err
		}
		events++
		if events&(ctxStride-1) == 0 {
			if err := core.Canceled(opts.Context, now, events); err != nil {
				return err
			}
		}
		tA, tC := math.Inf(1), math.Inf(1)
		if cur.More() {
			tA = cur.Head().Release
		}
		if byC.Len() > 0 {
			tC = s.cAt[byC.Min()]
		}
		if tC <= tA {
			// Completion: the running job with the least cAt finishes; the
			// best waiting job takes its machine. (A free machine implies an
			// empty waiting set, so promoting exactly one is enough.)
			if tC < now {
				tC = now // FP guard: time must not run backwards
			}
			// Each running job holds one machine (pre-speed rate 1).
			emitEpoch(obs, &s.epoch, now, tC, byC.Len()+waiting.Len(), float64(byC.Len()))
			sl := byC.Pop()
			worst.Remove(sl)
			now = tC
			recordFinish(r.res, r.sum, obs, s.seq[sl], s.release[sl], now)
			s.freeSlot(sl)
			if waiting.Len() > 0 {
				s.start(waiting.Pop(), now, sp)
			}
			continue
		}
		// Arrival.
		emitEpoch(obs, &s.epoch, now, tA, byC.Len()+waiting.Len(), float64(byC.Len()))
		now = tA
		j, seq := cur.Advance()
		if obs != nil {
			obs.ObserveArrival(now, seq, j)
		}
		tolJ := core.CompletionTol(j.Size)
		if j.Size <= tolJ {
			recordFinish(r.res, r.sum, obs, seq, j.Release, now) // degenerate job: completes at admission (as core.Run)
			continue
		}
		kJ := r.keyFor(j)
		switch {
		case byC.Len() < m:
			s.start(s.allocSlot(j, seq, kJ, tolJ), now, sp) // free machine (waiting is empty by the invariant)
		case ord.preempts(kJ, j.Size, seq, worst.Min(), now):
			v := worst.Min()
			remV := (s.cAt[v] - now) * sp // freeze the victim's progress
			byC.Remove(v)
			worst.Remove(v)
			if remV <= s.tol[v] {
				// The victim was within its completion tolerance of
				// finishing: the reference engine completes it at this
				// boundary, so record it here rather than re-queueing.
				recordFinish(r.res, r.sum, obs, s.seq[v], s.release[v], now)
				s.freeSlot(v)
			} else {
				s.rem[v] = remV
				waiting.Push(v)
			}
			s.start(s.allocSlot(j, seq, kJ, tolJ), now, sp)
		default:
			waiting.Push(s.allocSlot(j, seq, kJ, tolJ))
		}
	}
	if r.res != nil {
		r.res.Events = events
	} else {
		r.sum.Events = events
	}
	return cur.Err()
}

// Package fast is the event-driven fast-path simulation engine. For the
// structured policies — Round Robin, SRPT, SJF, FCFS and StaticPriority —
// it produces the same schedules as the reference engine (core.Run) in
// O((n + completions) log n) instead of the reference's O(events · n_t):
// RR via incremental virtual-time ("fair share") accounting, the rank-based
// policies via three indexed heaps over the running and waiting sets.
//
// Run is a drop-in replacement for core.Run that honors
// core.Options.Engine: it dispatches to a fast path when one exists and
// falls back to the reference engine for arbitrary Policy implementations
// (or when RecordSegments demands the full rate timeline, which only the
// reference engine produces).
//
// Agreement with the reference engine — completion times, flows and
// ℓk-norms within 1e-6 — is enforced by the differential-testing oracle
// harness in internal/check (bulk tests, a fuzz target and property tests).
// The one intentional semantic gap: both engines complete a job once its
// remaining work is within core.CompletionTol of zero at an event boundary,
// so per-job discrepancies are bounded by tolerance/rate, never
// accumulated.
package fast

import (
	"errors"
	"fmt"
	"math"

	"rrnorm/internal/core"
	"rrnorm/internal/policy"
)

// ErrNoFastPath reports that core.Options required the fast engine
// (EngineFast) but the policy/options combination has no fast path.
var ErrNoFastPath = errors.New("fast: no fast path for policy/options")

// ctxStride is the event interval between Options.Context cancellation
// polls in the fast paths — a power of two so the check is a mask; coarser
// than the reference engine's because fast-path events are ~100× cheaper.
const ctxStride = 256

// Eligible reports whether the policy/options combination has a fast path:
// one of the structured policies, with segment recording disabled (the rate
// timeline is only produced by the reference engine) and no observer that
// needs per-job epochs (the fast paths emit aggregate-only epochs). Under a
// heterogeneous machine model only RR is eligible: its fair share stays a
// single per-alive-count scalar (water-filling), while the rank-based paths
// assume the m identical-speed slots that make completion-if-unpreempted
// times policy-independent.
func Eligible(p core.Policy, opts core.Options) bool {
	if opts.RecordSegments || core.ObserverNeedsJobEpochs(opts.Observer) {
		return false
	}
	switch p.(type) {
	case policy.RR, *policy.RR:
		return true
	case *policy.SRPT, *policy.SJF, *policy.FCFS, *policy.StaticPriority:
		return opts.MachineModel.Default()
	}
	return false
}

// Run simulates the policy on the instance, honoring opts.Engine:
//
//   - core.EngineAuto (the zero value): fast path when Eligible, reference
//     engine otherwise;
//   - core.EngineReference: always core.Run;
//   - core.EngineFast: fast path required — ErrNoFastPath when there is
//     none.
//
// Results are interchangeable with core.Run's (same normalized job order,
// completions, flows); the fast paths do not record segments and do not
// consume the MaxEvents budget (their event count is structurally bounded
// by 2n).
func Run(in *core.Instance, p core.Policy, opts core.Options) (*core.Result, error) {
	return RunWS(in, p, opts, nil)
}

// RunWS is Run with an optional reusable workspace, mirroring core.RunWS:
// with a non-nil ws both the fast paths and the reference fallback draw
// every buffer — including the returned Result — from ws, performing zero
// steady-state heap allocations after the first run; the result is then
// workspace-owned (see core.Workspace for the ownership rule). ws == nil
// behaves exactly like Run. Outputs are byte-identical either way.
func RunWS(in *core.Instance, p core.Policy, opts core.Options, ws *core.Workspace) (*core.Result, error) {
	switch opts.Engine {
	case core.EngineReference:
		return core.RunWS(in, p, opts, ws)
	case core.EngineAuto, core.EngineFast:
	default:
		return nil, fmt.Errorf("%w: unknown Engine %d", core.ErrBadOptions, opts.Engine)
	}
	if !Eligible(p, opts) {
		if opts.Engine == core.EngineFast {
			return nil, fmt.Errorf("%w: policy %s (RecordSegments=%v, observer needs job epochs=%v)",
				ErrNoFastPath, p.Name(), opts.RecordSegments, core.ObserverNeedsJobEpochs(opts.Observer))
		}
		return core.RunWS(in, p, opts, ws)
	}
	// Same input contract as core.Run.
	if opts.Machines < 1 {
		return nil, fmt.Errorf("%w: Machines=%d", core.ErrBadOptions, opts.Machines)
	}
	if !(opts.Speed > 0) || math.IsInf(opts.Speed, 0) {
		return nil, fmt.Errorf("%w: Speed=%v", core.ErrBadOptions, opts.Speed)
	}
	if err := core.ValidateMachineOptions(p, opts); err != nil {
		return nil, err
	}
	if ws == nil {
		ws = core.NewWorkspace()
	}
	res, err := ws.StartRun(in, p.Name(), opts)
	if err != nil {
		return nil, err
	}
	// A materialized run is a streaming run over the normalized job slice:
	// the fast paths consume a core.Cursor either way, so RunWS and
	// RunStream share every event loop byte for byte. The cursor lives on
	// the scratch, not the stack — run-struct contents leak through the
	// Observer interface, which would force a stack cursor to the heap.
	s := scratchOf(ws)
	s.cur = core.CursorOver(res.Jobs)
	err = dispatch(p, &s.cur, res, nil, opts, s)
	s.cur = core.Cursor{}
	if err != nil {
		return nil, err
	}
	if opts.Observer != nil {
		opts.Observer.ObserveDone(res)
	}
	return res, nil
}

// RunStream simulates a policy over a core.JobSource without materializing
// it, honoring opts.Engine exactly like RunWS: fast path when Eligible,
// the reference engine's core.RunStream otherwise (EngineFast demands the
// fast path). The engine buffers only the alive set plus a one-job
// lookahead; per-job outputs flow through opts.Observer and the aggregate
// outcome returns as a StreamResult. ws follows the same reuse rules as
// RunWS; ws == nil allocates a private workspace.
func RunStream(src core.JobSource, p core.Policy, opts core.Options, ws *core.Workspace) (core.StreamResult, error) {
	switch opts.Engine {
	case core.EngineReference:
		return core.RunStream(src, p, opts, ws)
	case core.EngineAuto, core.EngineFast:
	default:
		return core.StreamResult{}, fmt.Errorf("%w: unknown Engine %d", core.ErrBadOptions, opts.Engine)
	}
	if !Eligible(p, opts) {
		if opts.Engine == core.EngineFast {
			return core.StreamResult{}, fmt.Errorf("%w: policy %s (RecordSegments=%v, observer needs job epochs=%v)",
				ErrNoFastPath, p.Name(), opts.RecordSegments, core.ObserverNeedsJobEpochs(opts.Observer))
		}
		return core.RunStream(src, p, opts, ws)
	}
	// Same input contract as core.RunStream.
	if opts.Machines < 1 {
		return core.StreamResult{}, fmt.Errorf("%w: Machines=%d", core.ErrBadOptions, opts.Machines)
	}
	if !(opts.Speed > 0) || math.IsInf(opts.Speed, 0) {
		return core.StreamResult{}, fmt.Errorf("%w: Speed=%v", core.ErrBadOptions, opts.Speed)
	}
	if err := core.ValidateMachineOptions(p, opts); err != nil {
		return core.StreamResult{}, err
	}
	if ws == nil {
		ws = core.NewWorkspace()
	}
	// Cursor and summary live on the scratch for the same escape reason as
	// in RunWS; both are cleared before returning so the source interface
	// does not outlive the run.
	s := scratchOf(ws)
	s.sum = core.StreamResult{Policy: p.Name(), Machines: opts.Machines, Speed: opts.Speed, MachineModel: opts.MachineModel}
	s.cur = core.CursorFrom(src)
	err := dispatch(p, &s.cur, nil, &s.sum, opts, s)
	if err == nil {
		s.sum.N = s.cur.Pulled()
	}
	sum := s.sum
	s.cur = core.Cursor{}
	s.sum = core.StreamResult{}
	if err != nil {
		return core.StreamResult{}, err
	}
	ws.ObserveStreamDone(opts.Observer, &sum)
	return sum, nil
}

// dispatch routes one run — arrivals from cur, completions into exactly one
// of res/sum — to the policy's fast path. Eligibility was already checked.
func dispatch(p core.Policy, cur *core.Cursor, res *core.Result, sum *core.StreamResult, opts core.Options, s *scratch) error {
	switch pp := p.(type) {
	case policy.RR, *policy.RR:
		core.BuildMachineEnv(&opts, &s.env)
		r := rrRun{cur: cur, res: res, sum: sum, h: &s.rrHeap, m: opts.Machines, speed: opts.Speed, obs: opts.Observer, ep: &s.epoch, env: &s.env, hetero: !s.env.Identical()}
		return runRR(&r, opts, s)
	case *policy.SRPT:
		s.prepareTopM(ordSRPT, false, opts.Speed)
		r := topmRun{cur: cur, res: res, sum: sum, s: s, obs: opts.Observer, km: keyNone}
		return r.run(opts)
	case *policy.SJF:
		s.prepareTopM(ordStatic, true, opts.Speed)
		r := topmRun{cur: cur, res: res, sum: sum, s: s, obs: opts.Observer, km: keySize}
		return r.run(opts)
	case *policy.FCFS:
		// Arrival-sequence order is (Release, ID) order — FCFS itself.
		s.prepareTopM(ordStatic, false, opts.Speed)
		r := topmRun{cur: cur, res: res, sum: sum, s: s, obs: opts.Observer, km: keyNone}
		return r.run(opts)
	case *policy.StaticPriority:
		s.prepareTopM(ordStatic, true, opts.Speed)
		r := topmRun{cur: cur, res: res, sum: sum, s: s, obs: opts.Observer, km: keyPriority, prio: pp}
		return r.run(opts)
	}
	// Unreachable: Eligible covered the type switch.
	return fmt.Errorf("%w: policy %s", ErrNoFastPath, p.Name())
}

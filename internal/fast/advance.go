package fast

import "sync/atomic"

// steppedAdvance routes the fast engine to its pre-batching event loops —
// one loop iteration per event/epoch — instead of the default bulk-advance
// paths. The stepped loops are kept verbatim as the reference point for
// two guarantees the bulk-advance layer must uphold:
//
//   - correctness: the property wall in internal/check replays the
//     1200-instance corpus plus the hunted testdata/corpus through both
//     modes and requires byte-identical results, norms and observer event
//     streams;
//   - performance: the bench-smoke ratchet measures batched-vs-stepped
//     wall time and fails CI when the bulk-advance layer stops paying for
//     itself.
//
// The flag is process-global and atomic so -race test walls can flip it
// between subtests; it is read once per run, never inside an event loop.
var steppedAdvance atomic.Bool

// SetSteppedAdvance selects the stepped (true) or bulk-advance (false,
// the default) event loops for subsequent runs and returns the previous
// setting. Intended for tests and benchmarks; both modes produce
// byte-identical output.
func SetSteppedAdvance(v bool) bool { return steppedAdvance.Swap(v) }

// SteppedAdvance reports whether the stepped event loops are selected.
func SteppedAdvance() bool { return steppedAdvance.Load() }

package fast

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/policy"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func mustFast(t *testing.T, in *core.Instance, p core.Policy, opts core.Options) *core.Result {
	t.Helper()
	opts.Engine = core.EngineFast
	res, err := Run(in, p, opts)
	if err != nil {
		t.Fatalf("fast.Run(%s): %v", p.Name(), err)
	}
	return res
}

func TestRRKnownSchedules(t *testing.T) {
	// Two size-2 jobs at t=0 share one machine: both complete at 4.
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 0, Size: 2}})
	res := mustFast(t, in, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[0], 4, 1e-12, "job 0")
	approx(t, res.Completion[1], 4, 1e-12, "job 1")

	// Staggered: A(2)@0, B(1)@1 → both complete at 3 (see core engine tests).
	in = core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 1, Size: 1}})
	res = mustFast(t, in, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[0], 3, 1e-12, "A")
	approx(t, res.Completion[1], 3, 1e-12, "B")
	approx(t, res.Flow[1], 2, 1e-12, "B flow")

	// Idle gap.
	in = core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 10, Size: 1}})
	res = mustFast(t, in, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[0], 1, 1e-12, "job 0")
	approx(t, res.Completion[1], 11, 1e-12, "job 1")

	// Speed scaling.
	in = core.NewInstance([]core.Job{{ID: 1, Release: 2, Size: 5}})
	res = mustFast(t, in, policy.NewRR(), core.Options{Machines: 1, Speed: 2.5})
	approx(t, res.Flow[0], 2, 1e-12, "flow at speed 2.5")

	// Underloaded multi-machine: every job runs at full rate.
	in = core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 3},
		{ID: 1, Release: 0, Size: 1},
		{ID: 2, Release: 0.5, Size: 2},
	})
	res = mustFast(t, in, policy.NewRR(), core.Options{Machines: 4, Speed: 1})
	approx(t, res.Completion[0], 3, 1e-12, "job 0")
	approx(t, res.Completion[1], 1, 1e-12, "job 1")
	approx(t, res.Completion[2], 2.5, 1e-12, "job 2")
}

func TestFCFSKnownSchedule(t *testing.T) {
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 2},
	})
	res := mustFast(t, in, policy.NewFCFS(), core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[0], 2, 1e-12, "job 0")
	approx(t, res.Completion[1], 4, 1e-12, "job 1")
}

func TestSRPTPreemption(t *testing.T) {
	// Big job first, then a small job preempts it.
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 4},
		{ID: 1, Release: 1, Size: 1},
	})
	res := mustFast(t, in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[1], 2, 1e-12, "small job runs immediately")
	approx(t, res.Completion[0], 5, 1e-12, "big job resumes after")
}

func TestSRPTTieBreakByReleaseThenID(t *testing.T) {
	// Remaining of job 0 hits exactly 1 when job 1 (size 1) arrives: the
	// earlier release wins the tie in both engines.
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 1, Size: 1},
	})
	res := mustFast(t, in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
	ref, err := core.Run(in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Completion {
		approx(t, res.Completion[i], ref.Completion[i], 1e-9, "tie-break agreement")
	}
	approx(t, res.Completion[0], 2, 1e-12, "job 0 keeps the machine on a tie")
	approx(t, res.Completion[1], 3, 1e-12, "job 1 waits")
}

func TestStaticPriorityPreempts(t *testing.T) {
	// Low-priority job running; high-priority arrival preempts it.
	p := policy.NewStaticPriority(map[int]float64{0: 2, 1: 1})
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 3},
		{ID: 1, Release: 1, Size: 1},
	})
	res := mustFast(t, in, p, core.Options{Machines: 1, Speed: 1})
	approx(t, res.Completion[1], 2, 1e-12, "priority 1 preempts")
	approx(t, res.Completion[0], 4, 1e-12, "priority 2 resumes")
}

func TestZeroSizeAndBatchArrivals(t *testing.T) {
	for _, p := range []core.Policy{policy.NewRR(), policy.NewSRPT(), policy.NewFCFS()} {
		in := core.NewInstance([]core.Job{
			{ID: 0, Release: 0, Size: 1},
			{ID: 1, Release: 0, Size: 1},
			{ID: 2, Release: 0.25, Size: 0},
			{ID: 3, Release: 7, Size: 0},
		})
		res := mustFast(t, in, p, core.Options{Machines: 1, Speed: 1})
		approx(t, res.Completion[2], 0.25, 1e-12, p.Name()+" zero-size at release")
		approx(t, res.Completion[3], 7, 1e-12, p.Name()+" zero-size in idle time")
		if mf := res.MaxFlow(); mf > 2+1e-9 {
			t.Fatalf("%s: zero-size jobs delayed real work (max flow %v)", p.Name(), mf)
		}
	}
}

func TestEmptyInstance(t *testing.T) {
	res := mustFast(t, core.NewInstance(nil), policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	if len(res.Flow) != 0 {
		t.Fatalf("empty instance: %+v", res)
	}
}

func TestDispatchAndFallback(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}})

	// EngineFast + unsupported policy → ErrNoFastPath.
	if _, err := Run(in, policy.NewSETF(), core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}); !errors.Is(err, ErrNoFastPath) {
		t.Errorf("SETF under EngineFast: want ErrNoFastPath, got %v", err)
	}
	// EngineFast + RecordSegments → ErrNoFastPath (only the reference
	// engine produces the rate timeline).
	if _, err := Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1, RecordSegments: true, Engine: core.EngineFast}); !errors.Is(err, ErrNoFastPath) {
		t.Errorf("RecordSegments under EngineFast: want ErrNoFastPath, got %v", err)
	}
	// EngineAuto + unsupported policy falls back to the reference engine.
	res, err := Run(in, policy.NewSETF(), core.Options{Machines: 1, Speed: 1})
	if err != nil || res.Events == 0 {
		t.Errorf("SETF under EngineAuto should fall back: %v %+v", err, res)
	}
	// EngineAuto + RecordSegments falls back and records segments.
	res, err = Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1, RecordSegments: true})
	if err != nil || len(res.Segments) == 0 {
		t.Errorf("RecordSegments under EngineAuto should fall back with segments: %v", err)
	}
	// Bad options surface the same sentinel as core.Run.
	if _, err := Run(in, policy.NewRR(), core.Options{Machines: 0, Speed: 1, Engine: core.EngineFast}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("machines=0: want ErrBadOptions, got %v", err)
	}
	if _, err := Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 0, Engine: core.EngineFast}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("speed=0: want ErrBadOptions, got %v", err)
	}
	if _, err := Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1, Engine: EngineKindInvalid}); !errors.Is(err, core.ErrBadOptions) {
		t.Errorf("bad engine kind: want ErrBadOptions, got %v", err)
	}
}

// EngineKindInvalid is an out-of-range selector used to test dispatch.
const EngineKindInvalid core.EngineKind = 97

func TestEligible(t *testing.T) {
	opts := core.Options{Machines: 1, Speed: 1}
	for _, p := range []core.Policy{policy.NewRR(), policy.NewSRPT(), policy.NewSJF(), policy.NewFCFS(), policy.NewStaticPriority(nil)} {
		if !Eligible(p, opts) {
			t.Errorf("%s should be eligible", p.Name())
		}
	}
	for _, p := range []core.Policy{policy.NewSETF(), policy.NewLAPS(0.5), policy.NewMLFQ(0.5), policy.NewWRR(0.01)} {
		if Eligible(p, opts) {
			t.Errorf("%s should not be eligible", p.Name())
		}
	}
	if Eligible(policy.NewRR(), core.Options{Machines: 1, Speed: 1, RecordSegments: true}) {
		t.Error("RecordSegments must disable the fast path")
	}
}

// TestDeterminism: the fast engine must be bit-identical across runs.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	jobs := make([]core.Job, 200)
	tt := 0.0
	for i := range jobs {
		tt += rng.Float64()
		jobs[i] = core.Job{ID: i, Release: tt, Size: 0.1 + rng.Float64()*4}
	}
	in := core.NewInstance(jobs)
	for _, p := range []core.Policy{policy.NewRR(), policy.NewSRPT(), policy.NewFCFS()} {
		a := mustFast(t, in, p, core.Options{Machines: 2, Speed: 1.5})
		b := mustFast(t, in, p, core.Options{Machines: 2, Speed: 1.5})
		for i := range a.Completion {
			if a.Completion[i] != b.Completion[i] {
				t.Fatalf("%s: completion %d differs across runs", p.Name(), i)
			}
		}
	}
}

package stats_test

import (
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func timelineInstance(seed uint64, n int) *core.Instance {
	return workload.PoissonLoad(stats.NewRNG(seed), n, 2, 0.95, workload.ExpSizes{M: 1})
}

// TestTimelineObserverMatchesComputeTimeStats: on the reference engine the
// observer consumes exactly the intervals ComputeTimeStats reads from
// Segments, with the same arithmetic — the two must agree to the last bit.
func TestTimelineObserverMatchesComputeTimeStats(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		in := timelineInstance(seed, 400)
		o := stats.NewTimelineObserver(2)
		res, err := core.Run(in, policy.NewRR(), core.Options{
			Machines: 2, Speed: 1, RecordSegments: true, Observer: o,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := core.ComputeTimeStats(res)
		got := o.Stats()
		if got != want {
			t.Fatalf("seed %d: observer %+v\n  != segment-derived %+v", seed, got, want)
		}
		if of := o.OverloadFraction(); math.Abs(of-want.OverloadedTime/(want.End-want.Start)) > 1e-15 {
			t.Fatalf("seed %d: OverloadFraction %v inconsistent with stats %+v", seed, of, want)
		}
	}
}

// TestTimelineObserverFastEngine: the fast paths emit aggregate-only
// epochs; time-averaged stats must agree with the reference engine's
// segment-derived values within the differential tolerance.
func TestTimelineObserverFastEngine(t *testing.T) {
	pols := []core.Policy{policy.NewRR(), policy.NewSRPT(), policy.NewFCFS()}
	for _, p := range pols {
		in := timelineInstance(11, 500)
		ref, err := core.Run(in, p, core.Options{Machines: 2, Speed: 1, RecordSegments: true})
		if err != nil {
			t.Fatal(err)
		}
		want := core.ComputeTimeStats(ref)

		o := stats.NewTimelineObserver(2)
		if _, err := fast.Run(in, p, core.Options{Machines: 2, Speed: 1, Engine: core.EngineFast, Observer: o}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		got := o.Stats()
		close := func(a, b float64, what string) {
			t.Helper()
			if d := math.Abs(a - b); d > 1e-6*(1+math.Max(math.Abs(a), math.Abs(b))) {
				t.Errorf("%s: %s observer %v vs segments %v", p.Name(), what, a, b)
			}
		}
		close(got.Start, want.Start, "Start")
		close(got.End, want.End, "End")
		close(got.AvgAlive, want.AvgAlive, "AvgAlive")
		close(got.Utilization, want.Utilization, "Utilization")
		close(got.BusyTime, want.BusyTime, "BusyTime")
		close(got.OverloadedTime, want.OverloadedTime, "OverloadedTime")
		if got.MaxAlive != want.MaxAlive {
			t.Errorf("%s: MaxAlive %d vs %d", p.Name(), got.MaxAlive, want.MaxAlive)
		}
		if got.BusyPeriods != want.BusyPeriods {
			t.Errorf("%s: BusyPeriods %d vs %d", p.Name(), got.BusyPeriods, want.BusyPeriods)
		}
	}
}

func TestTimelineObserverTrajectory(t *testing.T) {
	in := core.NewInstance([]core.Job{
		{ID: 1, Release: 0, Size: 2},
		{ID: 2, Release: 1, Size: 2},
		{ID: 3, Release: 10, Size: 1},
	})
	o := stats.NewTimelineObserver(1)
	o.KeepTrajectory = true
	if _, err := core.Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1, Observer: o}); err != nil {
		t.Fatal(err)
	}
	traj := o.Trajectory()
	if len(traj) == 0 {
		t.Fatal("no trajectory recorded")
	}
	// Consecutive points always change the alive count, and times ascend.
	for i := 1; i < len(traj); i++ {
		if traj[i].N == traj[i-1].N {
			t.Fatalf("trajectory %d repeats alive count %d", i, traj[i].N)
		}
		if traj[i].T < traj[i-1].T {
			t.Fatalf("trajectory times not ascending at %d", i)
		}
	}
	if traj[0].N != 1 {
		t.Fatalf("first point alive=%d, want 1", traj[0].N)
	}

	// Reset keeps the knobs and clears the data.
	o.Reset()
	if len(o.Trajectory()) != 0 || o.Stats() != (core.TimeStats{}) {
		t.Fatal("Reset did not clear")
	}
	if !o.KeepTrajectory || o.Machines != 1 {
		t.Fatal("Reset dropped configuration")
	}
}

func TestTimelineObserverEmpty(t *testing.T) {
	o := stats.NewTimelineObserver(1)
	if o.Stats() != (core.TimeStats{}) || o.OverloadFraction() != 0 {
		t.Fatal("unused observer must report zeroes")
	}
}

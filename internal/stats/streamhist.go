package stats

import (
	"fmt"
	"math"
)

// StreamHist is a constant-memory streaming histogram for positive values
// with bounded relative error, in the spirit of DDSketch: bucket b covers
// (γ^b, γ^(b+1)] for a growth factor γ = (1+α)/(1−α), so any quantile
// estimate is within relative error α of a true sample value. rrserve uses
// it for p50/p99 service-time metrics — unlike Sample it never retains
// observations, so it is safe for unbounded request streams.
//
// StreamHist is not safe for concurrent use; callers that share one across
// goroutines (the serving layer) guard it with a mutex.
type StreamHist struct {
	counts   []uint64
	zero     uint64 // values ≤ min representable
	over     uint64 // values > max representable (clamped into the top bucket)
	total    uint64
	min, max float64 // representable range [min, max]
	gamma    float64
	invLogG  float64 // 1 / ln γ
	logMin   float64 // ln min
}

// NewStreamHist returns a histogram with relative accuracy alpha ∈ (0, 0.5]
// (0 → 0.01) covering values in [1e-9, 1e9] — in seconds, a nanosecond to
// ~31 years, which spans any service time worth recording.
func NewStreamHist(alpha float64) *StreamHist {
	if !(alpha > 0) || alpha > 0.5 {
		alpha = 0.01
	}
	const lo, hi = 1e-9, 1e9
	gamma := (1 + alpha) / (1 - alpha)
	nb := int(math.Ceil(math.Log(hi/lo)/math.Log(gamma))) + 1
	return &StreamHist{
		counts:  make([]uint64, nb),
		min:     lo,
		max:     hi,
		gamma:   gamma,
		invLogG: 1 / math.Log(gamma),
		logMin:  math.Log(lo),
	}
}

// Add records one observation. Non-finite and sub-minimum values land in
// the zero bucket; values above the range are clamped into the top bucket.
func (h *StreamHist) Add(x float64) {
	h.total++
	if math.IsNaN(x) || x <= h.min {
		h.zero++
		return
	}
	if x > h.max {
		h.over++
		h.counts[len(h.counts)-1]++
		return
	}
	b := int((math.Log(x) - h.logMin) * h.invLogG)
	if b < 0 {
		b = 0
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
}

// Count returns the number of recorded observations.
func (h *StreamHist) Count() uint64 { return h.total }

// Quantile returns an estimate of the q ∈ [0,1] quantile: the geometric
// midpoint of the bucket holding the ⌈q·total⌉-th observation (0 when
// empty, 0 when that observation is in the zero bucket).
func (h *StreamHist) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= h.zero {
		return 0
	}
	seen := h.zero
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			lo := h.min * math.Pow(h.gamma, float64(b))
			return lo * math.Sqrt(h.gamma) // geometric bucket midpoint
		}
	}
	return h.max
}

// String renders a compact summary for logs and /metrics debugging.
func (h *StreamHist) String() string {
	return fmt.Sprintf("n=%d p50=%.4g p99=%.4g", h.total, h.Quantile(0.5), h.Quantile(0.99))
}

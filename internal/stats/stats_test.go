package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSampleMeanStd(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N=%d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean %v", s.Mean())
	}
	// Sample std with n−1: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std()-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std(), want)
	}
	if s.CI95() <= 0 {
		t.Fatalf("CI95 %v", s.CI95())
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String: %s", s.String())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Std() != 0 || s.CI95() != 0 {
		t.Fatal("empty sample should be zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Std() != 0 || s.CI95() != 0 {
		t.Fatal("single sample: mean only")
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	for _, x := range []float64{5, 1, 3, 2, 4} {
		s.Add(x)
	}
	if q := s.Quantile(0.5); math.Abs(q-3) > 1e-12 {
		t.Fatalf("median %v", q)
	}
	if q := s.Quantile(0); q != 1 {
		t.Fatalf("q0 %v", q)
	}
	if q := s.Quantile(1); q != 5 {
		t.Fatalf("q1 %v", q)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(100)
	same := true
	a2 := NewRNG(99)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should give different streams")
	}
}

func TestExpMean(t *testing.T) {
	rng := NewRNG(7)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Exp(rng, 3)
	}
	if m := sum / n; math.Abs(m-3) > 0.05 {
		t.Fatalf("exp mean %v, want 3", m)
	}
}

func TestParetoTail(t *testing.T) {
	rng := NewRNG(8)
	count := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := Pareto(rng, 2, 1)
		if v < 1 {
			t.Fatalf("pareto below xm: %v", v)
		}
		if v > 10 {
			count++
		}
	}
	// P(X > 10) = (1/10)^2 = 0.01.
	frac := float64(count) / n
	if frac < 0.007 || frac > 0.013 {
		t.Fatalf("tail fraction %v, want ≈ 0.01", frac)
	}
}

func TestBoundedPareto(t *testing.T) {
	rng := NewRNG(9)
	for i := 0; i < 50000; i++ {
		v := BoundedPareto(rng, 1.1, 1, 100)
		if v < 1 || v > 100 {
			t.Fatalf("bounded pareto out of range: %v", v)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0.5, 3, 3.5, 9, 100} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Fatalf("total %d", h.Total())
	}
	if h.Counts[0] != 2 { // -1 clamped + 0.5
		t.Fatalf("bin 0 count %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9 + 100 clamped
		t.Fatalf("bin 4 count %d", h.Counts[4])
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatal("render missing bars")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Fatalf("render lines: %q", out)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi<=lo and bins<1 both corrected
	h.Add(5)
	if h.Total() != 1 || len(h.Counts) != 1 {
		t.Fatalf("degenerate histogram: %+v", h)
	}
}

func TestPlotBasics(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 9}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
	}
	out := Plot(s, 40, 10, false, false)
	for _, want := range []string{"*", "o", "a", "b", "x ∈ [1, 3]", "y ∈ [1, 9]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10+3 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestPlotLogAxes(t *testing.T) {
	s := []Series{{Name: "pow", X: []float64{1, 10, 100}, Y: []float64{2, 20, 200}}}
	out := Plot(s, 30, 8, true, true)
	if !strings.Contains(out, "(log)") {
		t.Fatalf("log tag missing:\n%s", out)
	}
}

func TestPlotDegenerate(t *testing.T) {
	if out := Plot(nil, 30, 8, false, false); out != "(no finite points)\n" {
		t.Fatalf("empty plot: %q", out)
	}
	s := []Series{{Name: "nan", X: []float64{math.NaN()}, Y: []float64{1}}}
	if out := Plot(s, 30, 8, false, false); out != "(no finite points)\n" {
		t.Fatalf("nan plot: %q", out)
	}
	// Constant series must not divide by zero.
	c := []Series{{Name: "const", X: []float64{1, 2}, Y: []float64{5, 5}}}
	if out := Plot(c, 30, 8, false, false); !strings.Contains(out, "const") {
		t.Fatalf("const plot: %q", out)
	}
}

func TestFitPowerLaw(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	ys := []float64{3, 6, 12, 24} // y = 3x → exponent 1
	if b := FitPowerLaw(xs, ys); math.Abs(b-1) > 1e-9 {
		t.Fatalf("exponent %v, want 1", b)
	}
	// Non-positive points are skipped.
	if b := FitPowerLaw([]float64{0, 1, 2}, []float64{5, 2, 4}); math.Abs(b-1) > 1e-9 {
		t.Fatalf("skip-invalid exponent %v", b)
	}
	if b := FitPowerLaw([]float64{1}, []float64{2}); b != 0 {
		t.Fatalf("degenerate %v", b)
	}
}

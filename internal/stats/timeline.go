package stats

import "rrnorm/internal/core"

// TimePoint is one step of the n_t trajectory recorded by a
// TimelineObserver: the alive count becomes N at time T.
type TimePoint struct {
	T float64
	N int
}

// TimelineObserver accumulates core.ComputeTimeStats' time-averaged
// quantities — average and peak n_t, utilization, busy time and busy-period
// count, and the overloaded time |T_o| (t with n_t ≥ m) — from the epoch
// stream in one pass, using only each epoch's aggregates. It therefore
// works on both engines (no per-job epochs needed) and in O(1) state where
// the Segment-derived ComputeTimeStats needs the full recorded timeline.
//
// The busy-period gap test and every accumulation reproduce
// ComputeTimeStats' arithmetic exactly, so on the reference engine the two
// agree to the last bit; across engines the differential harness checks
// them at 1e-6.
//
// With KeepTrajectory set before the run, the observer additionally
// records the n_t trajectory — one TimePoint per change of the alive
// count, which bounds its memory by the number of distinct alive counts
// hit, not by the event count.
type TimelineObserver struct {
	// Machines is m for the overload test n_t ≥ m and the utilization
	// denominator; set it before the run (NewTimelineObserver does).
	Machines int
	// KeepTrajectory enables Trajectory recording.
	KeepTrajectory bool

	started     bool
	start, end  float64
	prevEnd     float64
	aliveArea   float64
	rateArea    float64
	busyTime    float64
	busyPeriods int
	overTime    float64
	maxAlive    int
	traj        []TimePoint
}

// NewTimelineObserver returns an observer for an m-machine run.
func NewTimelineObserver(m int) *TimelineObserver {
	return &TimelineObserver{Machines: m}
}

// Reset clears the accumulated state for a new run, keeping Machines,
// KeepTrajectory and the trajectory buffer's capacity.
func (o *TimelineObserver) Reset() {
	traj := o.traj[:0]
	*o = TimelineObserver{Machines: o.Machines, KeepTrajectory: o.KeepTrajectory, traj: traj}
}

// ObserveArrival implements core.Observer.
func (o *TimelineObserver) ObserveArrival(t float64, job int, j core.Job) {}

// ObserveEpoch implements core.Observer: one rate-constant interval is
// folded into every accumulator.
func (o *TimelineObserver) ObserveEpoch(e *core.Epoch) {
	d := e.End - e.Start
	// Same gap test as ComputeTimeStats: a new busy period starts at the
	// first epoch and whenever the timeline jumps past float dust.
	if !o.started || e.Start > o.prevEnd+1e-12*(1+e.Start) {
		o.busyPeriods++
	}
	if !o.started {
		o.started = true
		o.start = e.Start
	}
	o.prevEnd = e.End
	o.end = e.End
	o.busyTime += d
	o.aliveArea += float64(e.Alive) * d
	if e.Alive > o.maxAlive {
		o.maxAlive = e.Alive
	}
	if e.Alive >= o.Machines {
		o.overTime += d
	}
	o.rateArea += e.RateSum * d
	if o.KeepTrajectory {
		if n := len(o.traj); n == 0 || o.traj[n-1].N != e.Alive {
			o.traj = append(o.traj, TimePoint{T: e.Start, N: e.Alive})
		}
	}
}

// ObserveCompletion implements core.Observer.
func (o *TimelineObserver) ObserveCompletion(t float64, job int, flow float64) {}

// ObserveDone implements core.Observer.
func (o *TimelineObserver) ObserveDone(res *core.Result) {}

// Stats returns the accumulated quantities in ComputeTimeStats' shape,
// including its degenerate-input behavior (no epochs, or a zero-length
// horizon, yield zeroed derived fields).
func (o *TimelineObserver) Stats() core.TimeStats {
	var ts core.TimeStats
	if !o.started {
		return ts
	}
	ts.Start = o.start
	ts.End = o.end
	total := ts.End - ts.Start
	if total <= 0 {
		return ts
	}
	ts.AvgAlive = o.aliveArea / total
	ts.MaxAlive = o.maxAlive
	ts.Utilization = o.rateArea / (float64(o.Machines) * total)
	ts.BusyTime = o.busyTime
	ts.BusyPeriods = o.busyPeriods
	ts.OverloadedTime = o.overTime
	return ts
}

// OverloadFraction returns |T_o| / (End − Start), the fraction of the
// horizon spent overloaded (0 for an empty or zero-length horizon).
func (o *TimelineObserver) OverloadFraction() float64 {
	if !o.started {
		return 0
	}
	total := o.end - o.start
	if total <= 0 {
		return 0
	}
	return o.overTime / total
}

// Trajectory returns the recorded n_t trajectory (nil unless
// KeepTrajectory was set). The slice is owned by the observer.
func (o *TimelineObserver) Trajectory() []TimePoint { return o.traj }

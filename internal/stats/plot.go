package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named curve for Plot.
type Series struct {
	Name string
	X, Y []float64
}

// Plot renders one or more series as an ASCII scatter/line chart of the
// given size, with optional log-scaled axes. Each series uses its own
// marker; a legend and axis ranges are appended. Intended for quick looks
// at ratio curves in CLIs and examples — CSV output remains the precise
// record.
func Plot(series []Series, width, height int, logX, logY bool) string {
	if width < 16 {
		width = 60
	}
	if height < 4 {
		height = 16
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	tx := func(v float64) float64 {
		if logX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if logY {
			return math.Log10(v)
		}
		return v
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		return "(no finite points)\n"
	}
	// Degenerate-axis guards: with at least one finite point max ≥ min, so
	// ≤ triggers exactly on a collapsed range (no exact float equality).
	if maxX <= minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			x, y := tx(s.X[i]), ty(s.Y[i])
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			c := int((x - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			if grid[r][c] != ' ' && grid[r][c] != mk {
				grid[r][c] = '&' // overlapping series
			} else {
				grid[r][c] = mk
			}
		}
	}
	var sb strings.Builder
	for _, row := range grid {
		sb.WriteString("  |")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&sb, "   x ∈ [%.4g, %.4g]%s   y ∈ [%.4g, %.4g]%s\n",
		untx(minX, logX), untx(maxX, logX), scaleTag(logX),
		untx(minY, logY), untx(maxY, logY), scaleTag(logY))
	names := make([]string, 0, len(series))
	for si, s := range series {
		names = append(names, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	sort.Strings(names)
	sb.WriteString("   " + strings.Join(names, "   ") + "\n")
	return sb.String()
}

func untx(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

func scaleTag(log bool) string {
	if log {
		return " (log)"
	}
	return ""
}

package stats

import (
	"math"
	"sort"
	"testing"
)

// exactQuantile computes the ⌈q·n⌉-th order statistic, the definition
// StreamHist approximates.
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

func TestStreamHistRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	rng := NewRNG(42)
	h := NewStreamHist(alpha)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = Exp(rng, 0.05) // service-time-like: mean 50ms
		h.Add(xs[i])
	}
	if h.Count() != uint64(len(xs)) {
		t.Fatalf("count %d, want %d", h.Count(), len(xs))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exactQuantile(xs, q)
		got := h.Quantile(q)
		// The bucket midpoint is within α of a value adjacent in rank to
		// the exact order statistic; 3α covers the rank-vs-interpolation
		// slack with margin.
		if relErr := math.Abs(got-want) / want; relErr > 3*alpha {
			t.Fatalf("q=%g: got %g want %g (rel err %.4f > %.4f)", q, got, want, relErr, 3*alpha)
		}
	}
}

func TestStreamHistEdgeCases(t *testing.T) {
	h := NewStreamHist(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %g, want 0", got)
	}
	h.Add(0)
	h.Add(-5)
	h.Add(math.NaN())
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("all-degenerate quantile = %g, want 0", got)
	}
	h.Add(1e300) // clamped into the top bucket
	h.Add(math.Inf(1))
	if got := h.Quantile(1); got < 1e8 {
		t.Fatalf("overflow quantile = %g, want ~max", got)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
}

func TestStreamHistMonotoneQuantiles(t *testing.T) {
	rng := NewRNG(7)
	h := NewStreamHist(0.02)
	for i := 0; i < 5000; i++ {
		h.Add(Pareto(rng, 1.5, 1e-3))
	}
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%.2f gives %g < %g", q, v, prev)
		}
		prev = v
	}
}

// Package stats provides the deterministic randomness and the summary
// statistics used by the workload generators and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
)

// NewRNG returns a deterministic PCG-backed generator for the given seed.
// Every experiment in the harness derives all randomness from an explicit
// seed so tables and CSV series are exactly reproducible.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// ApproxEqual reports whether a and b agree within tol under the mixed
// absolute/relative reading |a−b| ≤ tol·(1 + max(|a|, |b|)) — absolute near
// zero, relative for large magnitudes (the same contract as the
// differential harness's tolerance check). It is one of rrlint's approved
// float-comparison helpers: code outside the harness that needs float
// equality should call it instead of == (see DESIGN.md §11, floateq).
// NaN operands never compare equal.
func ApproxEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// Sample accumulates replicated measurements of one quantity.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range s.xs {
		t += x
	}
	return t / float64(len(s.xs))
}

// Std returns the sample (n−1) standard deviation (0 for fewer than 2).
func (s *Sample) Std() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, x := range s.xs {
		d := x - m
		t += d * d
	}
	return math.Sqrt(t / float64(n-1))
}

// tCrit95 holds two-sided 95% Student-t critical values for df = 1..30;
// beyond 30 the normal value 1.96 is used.
var tCrit95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval for the mean
// (0 for fewer than 2 observations).
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	df := n - 1
	t := 1.96
	if df <= len(tCrit95) {
		t = tCrit95[df-1]
	}
	return t * s.Std() / math.Sqrt(float64(n))
}

// Quantile returns the q ∈ [0,1] sample quantile by linear interpolation.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders "mean ± ci (n=..)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi); values outside are
// clamped into the boundary bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given number of bins ≥ 1.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	b := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded values.
func (h *Histogram) Total() int { return h.total }

// Render draws an ASCII histogram with the given maximum bar width.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "[%8.3g,%8.3g) %6d %s\n", h.Lo+float64(i)*binW, h.Lo+float64(i+1)*binW, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Exp draws an exponential variate with the given mean.
func Exp(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Pareto draws a Pareto(α, xm) variate via inverse CDF: xm·U^{−1/α}.
func Pareto(rng *rand.Rand, alpha, xm float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm * math.Pow(u, -1/alpha)
}

// BoundedPareto draws Pareto(α, xm) truncated (by resampling) to at most hi.
func BoundedPareto(rng *rand.Rand, alpha, xm, hi float64) float64 {
	for i := 0; i < 64; i++ {
		if v := Pareto(rng, alpha, xm); v <= hi {
			return v
		}
	}
	return hi
}

// FitPowerLaw least-squares fits log y = a + b·log x and returns the
// exponent b — used to classify ratio-growth curves (b ≈ 0 ⇒ bounded).
// Points with non-positive coordinates are skipped; fewer than two usable
// points give 0.
func FitPowerLaw(xs, ys []float64) float64 {
	var n, sx, sy, sxx, sxy float64
	for i := range xs {
		if !(xs[i] > 0) || !(ys[i] > 0) {
			continue
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		n++
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	if n < 2 {
		return 0
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

package hunt

import (
	"fmt"
	"math"

	"rrnorm/internal/core"
	"rrnorm/internal/dual"
	"rrnorm/internal/fast"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
)

// Anomaly is one invariant violation found by the monitors. Kind is a
// stable machine-readable tag; Msg carries the quantities.
type Anomaly struct {
	Kind string
	Msg  string
}

func (a Anomaly) String() string { return a.Kind + ": " + a.Msg }

// Anomaly kinds. Every kind names a statement that is a THEOREM about a
// correct simulator + bound stack — a firing monitor means a bug (or a
// tolerance breach worth a look), never an interesting instance.
const (
	// AnomLBAboveAchieved: the LP lower bound on OPT's Σ F^k exceeds the
	// Σ F^k of an achieved unit-speed schedule (RR or SRPT). OPT is ≤ any
	// achieved schedule, so the "lower bound" isn't one.
	AnomLBAboveAchieved = "lb-above-achieved"
	// AnomRRBelowLB: RR at speed ≤ 1 reports a smaller Σ F^k than the
	// lower bound on the unit-speed optimum — a sub-unit-speed schedule
	// beating OPT.
	AnomRRBelowLB = "rr-below-lb"
	// AnomNonFinite: an evaluation produced NaN/Inf where a finite
	// quantity belongs.
	AnomNonFinite = "non-finite"
	// AnomCertInfeasible: the dual-fitting certificate fails (constraint
	// violation or lemma failure) at a speed where Theorem 1 proves it
	// feasible.
	AnomCertInfeasible = "dual-certificate-failed"
	// AnomTheoryBound: RR's Σ F^k at the certificate speed exceeds the
	// certified bound ImpliedPowerRatio × (achieved upper bound on OPT^k).
	AnomTheoryBound = "theory-bound-exceeded"
	// AnomStream: a streaming schedule invariant broke mid-run (epoch
	// ordering, rate capacity, impossible completion).
	AnomStream = "stream-invariant"
)

// maxAnomalies bounds what a monitor retains; a broken tree would
// otherwise flood memory with millions of identical findings.
const maxAnomalies = 64

// Monitor is the hunt's anomaly layer: it cross-checks every evaluation
// against statements the theory guarantees, absorbs the streaming
// monitors' findings, and (for champions) verifies the paper's
// dual-fitting certificate end to end. A healthy tree keeps it silent; any
// finding is a correctness bug somewhere in engines, LP, or dual fitting.
//
// Monitor is not safe for concurrent use; the search calls it from one
// goroutine (streaming monitors run inside engine goroutines, but each
// run owns a private StreamMonitor that is absorbed afterwards).
type Monitor struct {
	p Params
	// Eps is the dual-fitting ε used by CheckCertificate (default 0.1,
	// the largest the construction allows — the weakest speed demand).
	Eps float64
	// Tol is the relative slack all comparisons allow (default 1e-6, the
	// differential harness's bar).
	Tol float64

	anomalies []Anomaly
	dropped   int
	checked   int
}

// NewMonitor returns a monitor for the hunt cell p.
func NewMonitor(p Params) *Monitor {
	return &Monitor{p: p.withDefaults(), Eps: 0.1, Tol: 1e-6}
}

// Checked returns the number of evaluations checked.
func (m *Monitor) Checked() int { return m.checked }

// Anomalies returns the findings so far (at most maxAnomalies; the
// overflow count is appended as a final pseudo-anomaly).
func (m *Monitor) Anomalies() []Anomaly {
	out := append([]Anomaly(nil), m.anomalies...)
	if m.dropped > 0 {
		out = append(out, Anomaly{Kind: "truncated", Msg: fmt.Sprintf("%d further anomalies dropped", m.dropped)})
	}
	return out
}

func (m *Monitor) add(kind, format string, args ...any) {
	if len(m.anomalies) >= maxAnomalies {
		m.dropped++
		return
	}
	m.anomalies = append(m.anomalies, Anomaly{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// slack is the mixed absolute/relative tolerance band around x.
func (m *Monitor) slack(x float64) float64 { return m.Tol * (1 + math.Abs(x)) }

// CheckEvaluation cross-checks one evaluation. name labels the candidate
// in findings (seed spec, "mutant", "shrunk").
func (m *Monitor) CheckEvaluation(name string, in *core.Instance, ev *Evaluation) {
	m.checked++
	for _, q := range []struct {
		label string
		v     float64
	}{
		{"RRPower", ev.RRPower},
		{"UnitRRPower", ev.UnitRRPower},
		{"UnitSRPTPower", ev.UnitSRPTPower},
		{"LB", ev.LB.Value},
	} {
		if math.IsNaN(q.v) || math.IsInf(q.v, 0) || q.v < 0 {
			m.add(AnomNonFinite, "%s: %s = %v (n=%d)", name, q.label, q.v, in.N())
		}
	}
	if ub := ev.UnitBest(); ev.LB.Value > ub+m.slack(ub) {
		m.add(AnomLBAboveAchieved, "%s: LB %.6g above achieved unit-speed Σ F^%d %.6g (n=%d, m=%d)",
			name, ev.LB.Value, m.p.K, ub, in.N(), m.p.Machines)
	}
	// RR cannot beat the unit-speed optimum only when no machine runs
	// faster than unit speed after augmentation: then RR's schedule is
	// feasible for OPT's m unit machines. A heterogeneous model with a
	// machine faster than 1/Speed legitimately undercuts the bound.
	sMax := 1.0
	for _, sp := range m.p.MachineSpeeds {
		if sp > sMax {
			sMax = sp
		}
	}
	if m.p.Speed*sMax <= 1 && ev.RRPower+m.slack(ev.LB.Value) < ev.LB.Value {
		m.add(AnomRRBelowLB, "%s: RR at speed %g has Σ F^%d %.6g below the unit-speed lower bound %.6g",
			name, m.p.Speed, m.p.K, ev.RRPower, ev.LB.Value)
	}
}

// CheckCertificate runs the paper's dual-fitting certificate on the
// instance — RR at Theorem 1's speed η = 2k(1+10ε) with the streaming
// witness observer — and flags any failure: the theorem says the
// certificate is feasible with dual objective ≥ ε·Σ F^k at that speed, so
// an infeasible certificate on any instance the hunter can construct is a
// found bug, not a found instance. It also checks the implied ratio bound
// against an achieved upper bound on OPT^k (SRPT at unit speed).
//
// This is the expensive cross-check (the witness needs per-job epochs, so
// the run routes to the reference engine); the search applies it to
// champions, not to every candidate.
func (m *Monitor) CheckCertificate(name string, in *core.Instance) {
	if in.N() == 0 {
		return
	}
	w, err := dual.NewWitnessObserver(m.p.K, m.Eps, m.p.Machines)
	if err != nil {
		m.add(AnomCertInfeasible, "%s: witness construction: %v", name, err)
		return
	}
	eta := dual.Eta(m.p.K, m.Eps)
	res, err := fast.Run(in, policy.NewRR(), core.Options{Machines: m.p.Machines, Speed: eta, Observer: w})
	if err != nil {
		m.add(AnomCertInfeasible, "%s: RR at η=%.3g failed: %v", name, eta, err)
		return
	}
	cert, err := w.Certificate()
	if err != nil {
		m.add(AnomCertInfeasible, "%s: %v", name, err)
		return
	}
	if !cert.Feasible {
		m.add(AnomCertInfeasible, "%s: dual constraints violated (max violation %.3g at job %d)",
			name, cert.MaxViolation, cert.ViolatingJob)
	}
	if !cert.Lemma1OK || !cert.Lemma2OK {
		m.add(AnomCertInfeasible, "%s: lemma failure (L1 %.6g≥%.6g: %v, L2 %.6g≤%.6g: %v)",
			name, cert.Lemma1LHS, cert.Lemma1RHS, cert.Lemma1OK, cert.Lemma2LHS, cert.Lemma2RHS, cert.Lemma2OK)
	}
	if cert.RRPower > 0 && cert.ObjectiveFraction+m.Tol < m.Eps {
		m.add(AnomCertInfeasible, "%s: dual objective fraction %.6g below ε=%g at speed η=%.3g",
			name, cert.ObjectiveFraction, m.Eps, eta)
	}
	// Theory-bound cross-check: Σ F^k at η ≤ ImpliedPowerRatio · OPT^k
	// ≤ ImpliedPowerRatio · (SRPT's unit-speed Σ F^k).
	if cert.Feasible {
		srpt, err := fast.Run(in, policy.NewSRPT(), core.Options{Machines: m.p.Machines, Speed: 1})
		if err != nil {
			m.add(AnomNonFinite, "%s: SRPT upper-bound run failed: %v", name, err)
			return
		}
		ub := cert.ImpliedPowerRatio * metrics.KthPowerSum(srpt.Flow, m.p.K)
		if pow := metrics.KthPowerSum(res.Flow, m.p.K); pow > ub+m.slack(ub) {
			m.add(AnomTheoryBound, "%s: Σ F^%d at η %.6g exceeds certified bound %.6g",
				name, m.p.K, pow, ub)
		}
	}
}

// absorb moves a streaming monitor's findings into the monitor.
func (m *Monitor) absorb(name string, sm *StreamMonitor) {
	if sm == nil {
		return
	}
	for _, a := range sm.Anomalies() {
		m.add(a.Kind, "%s: %s", name, a.Msg)
	}
}

// StreamMonitor is the observer-based invariant layer: attached to any run
// via core.Options.Observer it checks, online, that the event stream
// describes a physically possible schedule — epochs chronological and
// non-overlapping, rate sums within machine capacity, completions no
// earlier than release + size/speed, exactly one completion per arrival.
// It never retains engine-owned slices and works with aggregate-only
// epochs, so the fast paths stay eligible.
//
// The search attaches one to every RR evaluation run; rrserve can attach
// one per simulation (Config.MonitorAnomalies) as a standing net in
// production.
type StreamMonitor struct {
	machines int
	speed    float64
	capacity float64 // total rate capacity: Σ machine speeds (m when identical)
	maxSpeed float64 // fastest machine's relative speed (1 when identical)

	release   []float64 // per arrived job, copied from arrivals
	size      []float64
	completed []bool
	lastEnd   float64
	arrivals  int
	completes int
	anomalies []Anomaly
	dropped   int
}

// NewStreamMonitor returns a monitor for a run on `machines` identical
// machines at the given speed (the run's own options; used for capacity and
// minimum-flow checks).
func NewStreamMonitor(machines int, speed float64) *StreamMonitor {
	return NewStreamMonitorModel(machines, speed, core.Machines{})
}

// NewStreamMonitorModel is NewStreamMonitor under an explicit machine
// model: capacity becomes the speed vector's sum and the minimum-flow bound
// uses the fastest machine, so heterogeneous runs are checked against their
// actual physics instead of the identical-machine envelope.
func NewStreamMonitorModel(machines int, speed float64, mm core.Machines) *StreamMonitor {
	if machines < 1 {
		machines = 1
	}
	if speed <= 0 {
		speed = 1
	}
	s := &StreamMonitor{machines: machines, speed: speed, capacity: float64(machines), maxSpeed: 1}
	if mm.Heterogeneous() {
		total, max := 0.0, 0.0
		for _, sp := range mm.Speeds {
			total += sp
			if sp > max {
				max = sp
			}
		}
		if total > 0 {
			s.capacity = total
		}
		if max > 0 {
			s.maxSpeed = max
		}
	}
	return s
}

// Anomalies returns the findings (at most maxAnomalies, plus a truncation
// marker).
func (s *StreamMonitor) Anomalies() []Anomaly {
	out := append([]Anomaly(nil), s.anomalies...)
	if s.dropped > 0 {
		out = append(out, Anomaly{Kind: "truncated", Msg: fmt.Sprintf("%d further anomalies dropped", s.dropped)})
	}
	return out
}

func (s *StreamMonitor) add(format string, args ...any) {
	if len(s.anomalies) >= maxAnomalies {
		s.dropped++
		return
	}
	s.anomalies = append(s.anomalies, Anomaly{Kind: AnomStream, Msg: fmt.Sprintf(format, args...)})
}

func tolBand(x float64) float64 { return 1e-6 * (1 + math.Abs(x)) }

// ObserveArrival implements core.Observer.
//
//rrlint:coldpath opt-in anomaly diagnostics; reporting boxes its message arguments
func (s *StreamMonitor) ObserveArrival(t float64, job int, j core.Job) {
	for len(s.release) <= job {
		s.release = append(s.release, 0)
		s.size = append(s.size, 0)
		s.completed = append(s.completed, false)
	}
	s.release[job] = j.Release
	s.size[job] = j.Size
	s.arrivals++
	if t+tolBand(t) < j.Release {
		s.add("job %d admitted at %.9g before release %.9g", job, t, j.Release)
	}
}

// ObserveEpoch implements core.Observer. Only scalar fields are read —
// engine-owned slices are neither touched nor retained.
//
//rrlint:coldpath opt-in anomaly diagnostics; reporting boxes its message arguments
func (s *StreamMonitor) ObserveEpoch(e *core.Epoch) {
	if e.End < e.Start {
		s.add("epoch reversed [%.9g, %.9g)", e.Start, e.End)
	}
	if e.Start+tolBand(e.Start) < s.lastEnd {
		s.add("epoch [%.9g, %.9g) overlaps previous end %.9g", e.Start, e.End, s.lastEnd)
	}
	if e.End > s.lastEnd {
		s.lastEnd = e.End
	}
	if e.RateSum > s.capacity+1e-6 {
		s.add("epoch [%.9g, %.9g) rate sum %.9g exceeds capacity %.9g (m=%d)", e.Start, e.End, e.RateSum, s.capacity, s.machines)
	}
	if e.Alive < 1 {
		s.add("epoch [%.9g, %.9g) with alive=%d", e.Start, e.End, e.Alive)
	}
}

// ObserveCompletion implements core.Observer.
//
//rrlint:coldpath opt-in anomaly diagnostics; reporting boxes its message arguments
func (s *StreamMonitor) ObserveCompletion(t float64, job int, flow float64) {
	s.completes++
	if job < 0 || job >= len(s.release) {
		s.add("completion for unknown job %d at %.9g", job, t)
		return
	}
	if s.completed[job] {
		s.add("job %d completed twice (second at %.9g)", job, t)
		return
	}
	s.completed[job] = true
	if flow < -tolBand(t) {
		s.add("job %d has negative flow %.9g", job, flow)
	}
	if min := s.size[job] / (s.maxSpeed * s.speed); flow+tolBand(min) < min {
		s.add("job %d flow %.9g below size/(s_max·speed) %.9g — faster than the fastest machine at speed %g allows",
			job, flow, min, s.speed)
	}
	if t+tolBand(t) < s.release[job] {
		s.add("job %d completes at %.9g before release %.9g", job, t, s.release[job])
	}
}

// ObserveDone implements core.Observer.
func (s *StreamMonitor) ObserveDone(res *core.Result) {
	if s.completes != s.arrivals {
		s.add("%d arrivals but %d completions", s.arrivals, s.completes)
	}
	// Streaming runs (core.RunStream) deliver a Result with nil per-job
	// slices by design — per-job flows were already checked one at a time
	// through ObserveCompletion — so the materialized-shape check only
	// applies when a Flow slice exists to count.
	if res.Flow != nil && len(res.Flow) != s.arrivals {
		s.add("result has %d flows for %d arrivals", len(res.Flow), s.arrivals)
	}
}

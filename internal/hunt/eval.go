// Package hunt is the adversarial ratio hunter: a guided search over
// scheduling instances that maximizes the empirical competitive ratio
//
//	RR^k / LB  :=  Σ_j F_j^k under Round Robin at (machines, speed)
//	              ─────────────────────────────────────────────────
//	              certified LP lower bound on OPT's Σ_j F_j^k (unit speed)
//
// per (k, speed s, machines m). The paper's ℓk bounds (Theorem 1 upper
// bound at speed 2k(1+10ε), Bansal–Pruhs-style Ω(n^ε) lower bounds below
// it) are only as credible as the worst instances the simulator has been
// confronted with; hand-built hard instances are scarce for general k, so
// the hunter automates the construction: it seeds from the analytic
// lower-bound streams in internal/workload, perturbs them with local and
// structural mutations, evaluates candidates on the fast engine through
// the pooled-workspace batch runner, delta-debugs every champion down to a
// minimal witness, and commits the result as a replayable regression
// corpus (testdata/corpus). An anomaly layer (Monitor, StreamMonitor)
// cross-checks every evaluation against the theory — LP bound vs achieved
// schedules, dual-fitting certificate feasibility — so a ratio that could
// only come from a simulator or bound bug is flagged instead of celebrated.
package hunt

import (
	"context"
	"fmt"

	"rrnorm/internal/batch"
	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/par"
	"rrnorm/internal/policy"
)

// Params fixes the objective of a hunt: which (k, speed, machines) cell is
// being attacked and how candidates are evaluated. The zero value is not
// ready; call withDefaults (Run and the CLI do).
type Params struct {
	// K is the ℓk-norm order of the objective (k ≥ 1).
	K int
	// Machines is m ≥ 1.
	Machines int
	// Speed is RR's resource-augmentation speed s > 0; the lower bound
	// side always runs at unit speed, exactly as in the paper.
	Speed float64
	// MachineSpeeds, when non-empty, runs the RR-at-hunt-speed side under a
	// uniform machine model (len must equal Machines; see core.Machines).
	// The lower-bound side — and the unit-speed achieved schedules it is
	// checked against — stay on identical machines, exactly as the paper's
	// bounds do, so a heterogeneous cell measures RR's degradation relative
	// to the identical-machine optimum.
	MachineSpeeds []float64
	// PreemptCost is the per-preemption work surcharge applied to the
	// RR-at-hunt-speed run (RR never preempts, so it only matters for
	// future policy-generalized hunts; recorded in corpus entries).
	PreemptCost float64
	// MaxJobs caps candidate instance sizes, bounding both the LP solve
	// cost per evaluation and the search space (default 40).
	MaxJobs int
	// LBSlots and LBMaxUnits fix the LP discretization for every
	// evaluation (lp.Options.Slots/MaxUnits; defaults 64 and 4000). The
	// ratio is only comparable between candidates evaluated with the same
	// discretization, so corpus entries record these.
	LBSlots    int
	LBMaxUnits int64
	// Workers bounds evaluation parallelism (≤ 0 means GOMAXPROCS).
	// Parallelism never changes results: evaluations are pure and are
	// collected by candidate index.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.K < 1 {
		p.K = 2
	}
	if p.Machines < 1 {
		if len(p.MachineSpeeds) > 0 {
			p.Machines = len(p.MachineSpeeds)
		} else {
			p.Machines = 1
		}
	}
	if p.PreemptCost < 0 {
		p.PreemptCost = 0
	}
	if p.Speed <= 0 {
		p.Speed = 1
	}
	if p.MaxJobs <= 0 {
		p.MaxJobs = 40
	}
	if p.LBSlots <= 0 {
		p.LBSlots = 64
	}
	if p.LBMaxUnits <= 0 {
		p.LBMaxUnits = 4000
	}
	return p
}

// lbOptions is the lp discretization every evaluation of this hunt uses.
func (p Params) lbOptions() lp.Options {
	return lp.Options{Slots: p.LBSlots, MaxUnits: p.LBMaxUnits}
}

// Evaluation is one candidate's measured objective plus the cross-check
// quantities the anomaly monitors compare it against.
type Evaluation struct {
	// RRPower is Σ_j F_j^k under RR at (Machines, Speed).
	RRPower float64
	// UnitRRPower and UnitSRPTPower are Σ_j F_j^k of RR and SRPT at unit
	// speed — achieved schedules, so each upper-bounds OPT^k. Their min
	// (UnitBest) is the tightest achieved upper bound the monitors check
	// the LP lower bound against.
	UnitRRPower   float64
	UnitSRPTPower float64
	// LB is the certified LP lower bound on OPT's Σ_j F_j^k at unit speed.
	LB lp.Bound
	// Ratio is RRPower / LB.Value — the hunt objective — or -1 when the
	// bound is degenerate (zero: instances with no work). NormRatio is its
	// k-th root, the ℓk-norm competitive ratio estimate.
	Ratio     float64
	NormRatio float64
}

// UnitBest returns the smaller of the two achieved unit-speed powers — an
// upper bound on OPT^k.
func (e *Evaluation) UnitBest() float64 {
	if e.UnitSRPTPower < e.UnitRRPower {
		return e.UnitSRPTPower
	}
	return e.UnitRRPower
}

// Evaluate measures one instance. It validates the instance first; the
// mutators only produce valid instances, but Evaluate is also the entry
// point for corpus replay and fuzzing, which must reject garbage loudly.
func Evaluate(in *core.Instance, p Params) (*Evaluation, error) {
	evs, err := EvaluateAll(context.Background(), []*core.Instance{in}, p)
	if err != nil {
		return nil, err
	}
	return evs[0], nil
}

// EvaluateAll measures many candidates: the three simulations per
// candidate (RR at the hunt speed, RR and SRPT at unit speed) fan out over
// the pooled-workspace batch runner, and the LP solves — the expensive
// part — over a bounded worker pool. Results are in candidate order and
// independent of Workers.
//
// Observers, when attached via attachMonitors, see only the RR-at-hunt-
// speed run (the schedule the ratio's numerator measures).
func EvaluateAll(ctx context.Context, ins []*core.Instance, p Params) ([]*Evaluation, error) {
	return evaluateAll(ctx, ins, p, nil)
}

// evaluateAll is EvaluateAll with an optional per-candidate observer
// factory for the RR-at-hunt-speed run (the monitors' streaming hook).
func evaluateAll(ctx context.Context, ins []*core.Instance, p Params, observe func(i int) core.Observer) ([]*Evaluation, error) {
	p = p.withDefaults()
	n := len(ins)
	if n == 0 {
		return nil, nil
	}
	for i, in := range ins {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("hunt: candidate %d: %w", i, err)
		}
		if in.N() > p.MaxJobs {
			return nil, fmt.Errorf("hunt: candidate %d has %d jobs, cap is %d", i, in.N(), p.MaxJobs)
		}
	}
	evs := make([]*Evaluation, n)
	for i := range evs {
		evs[i] = &Evaluation{}
	}
	// Simulations: 3 points per candidate, reduced in consume (results are
	// workspace-owned; only scalars leave the callback).
	points := make([]batch.Point, 0, 3*n)
	mm := core.Machines{Speeds: p.MachineSpeeds, PreemptCost: p.PreemptCost}
	for i, in := range ins {
		huntOpts := core.Options{Machines: p.Machines, Speed: p.Speed, MachineModel: mm}
		if observe != nil {
			huntOpts.Observer = observe(i)
		}
		points = append(points,
			batch.Point{Instance: in, Policy: policy.NewRR(), Options: huntOpts},
			batch.Point{Instance: in, Policy: policy.NewRR(), Options: core.Options{Machines: p.Machines, Speed: 1}},
			batch.Point{Instance: in, Policy: policy.NewSRPT(), Options: core.Options{Machines: p.Machines, Speed: 1}},
		)
	}
	err := batch.Run(ctx, points, p.Workers, func(i int, res *core.Result) error {
		pow := metrics.KthPowerSum(res.Flow, p.K)
		ev := evs[i/3]
		switch i % 3 {
		case 0:
			ev.RRPower = pow
		case 1:
			ev.UnitRRPower = pow
		default:
			ev.UnitSRPTPower = pow
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("hunt: simulate: %w", err)
	}
	// Lower bounds: one LP solve per candidate.
	err = par.ForEachCtx(ctx, n, p.Workers, func(ctx context.Context, i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		b, err := lp.KPowerLowerBound(ins[i], p.Machines, p.K, p.lbOptions())
		if err != nil {
			return fmt.Errorf("hunt: candidate %d lower bound: %w", i, err)
		}
		evs[i].LB = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range evs {
		if ev.LB.Value > 0 {
			ev.Ratio = ev.RRPower / ev.LB.Value
			ev.NormRatio = metrics.RootK(ev.Ratio, p.K)
		} else {
			ev.Ratio, ev.NormRatio = -1, -1
		}
	}
	return evs, nil
}

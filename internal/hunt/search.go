package hunt

import (
	"context"
	"fmt"
	"io"
	"sort"

	"rrnorm/internal/core"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// Options configures a hunt run.
type Options struct {
	Params
	// Seed drives all search randomness; equal seeds (and Params/budgets)
	// give byte-identical reports.
	Seed uint64
	// Budget is the total number of candidate evaluations the search may
	// spend, seeds included (default 400).
	Budget int
	// Population is the evolutionary population size μ (default 16); each
	// generation breeds the same number of offspring.
	Population int
	// ShrinkBudget bounds the extra evaluations the champion shrinker may
	// spend (default 400). 0 uses the default; negative disables
	// shrinking.
	ShrinkBudget int
	// ShrinkTol is the shrinker's relative ratio tolerance (default 1e-3):
	// a shrink step is accepted only while the recomputed ratio stays
	// within ±ShrinkTol·(1+ratio) of the champion's.
	ShrinkTol float64
	// Monitor, when non-nil, cross-checks every evaluation (and the
	// champion's dual certificate) and collects anomalies into the report.
	Monitor *Monitor
	// Log, when non-nil, receives progress lines (generation bests). The
	// report itself is deterministic; Log output is too, but is meant for
	// humans mid-run.
	Log io.Writer
}

func (o Options) withDefaults() Options {
	o.Params = o.Params.withDefaults()
	if o.Budget <= 0 {
		o.Budget = 400
	}
	if o.Population <= 0 {
		o.Population = 16
	}
	if o.ShrinkBudget == 0 {
		o.ShrinkBudget = 400
	}
	if o.ShrinkTol <= 0 {
		o.ShrinkTol = 1e-3
	}
	return o
}

// Candidate is one evaluated instance in the search.
type Candidate struct {
	Instance *core.Instance
	Eval     *Evaluation
	// Origin describes where the candidate came from: "seed:<spec>" for
	// the analytic seed streams, "mutant" for search offspring, "shrunk"
	// for the delta-debugged champion.
	Origin string
	// fingerprint canonically identifies the (instance, policy, options)
	// triple — the dedupe key and deterministic tie-break.
	fingerprint string
}

// Report is the outcome of a hunt.
type Report struct {
	Options Options
	// SeedBest is the best candidate among the analytic seed streams — the
	// bar the acceptance criterion measures champions against.
	SeedBest *Candidate
	// Champion is the best candidate found by the search (pre-shrink).
	Champion *Candidate
	// Shrunk is the delta-debugged champion: the minimal witness whose
	// ratio stays within ShrinkTol of the champion's. Nil only when
	// shrinking was disabled.
	Shrunk *Candidate
	// Evaluations and Generations count the search's actual spend;
	// ShrinkEvals the shrinker's.
	Evaluations int
	Generations int
	ShrinkEvals int
	ShrinkSteps int
	// Improved reports Champion.Eval.Ratio > SeedBest.Eval.Ratio — whether
	// the search beat the best analytic seed stream.
	Improved bool
	// Anomalies are the monitor findings across every evaluation (empty on
	// a healthy tree).
	Anomalies []Anomaly
}

// seedInstances builds the deterministic seed pool: the Bansal–Pruhs-style
// RR streams at several lengths (speed-scaled via RRStreamS so the stream
// stays RR-hostile at the hunt speed), the multi-scale cascades, and a
// descending batch — every analytic family in internal/workload that fits
// the job cap.
func seedInstances(p Params) []*Candidate {
	var seeds []*Candidate
	add := func(spec string, in *core.Instance) {
		if in.N() >= 1 && in.N() <= p.MaxJobs {
			seeds = append(seeds, &Candidate{Instance: in, Origin: "seed:" + spec})
		}
	}
	for _, g := range []int{4, 6, 8, 12, 16, 24, 32} {
		if g*p.Machines <= p.MaxJobs {
			add(fmt.Sprintf("rrstream:groups=%d,m=%d,s=%g", g, p.Machines, p.Speed),
				workload.RRStreamS(g, p.Machines, p.Speed))
		}
	}
	for levels := 2; (1<<levels)-1 <= p.MaxJobs; levels++ {
		add(fmt.Sprintf("cascade:levels=%d,theta=0.8", levels), workload.Cascade(levels, 0.8))
		add(fmt.Sprintf("cascade:levels=%d,theta=0.4", levels), workload.Cascade(levels, 0.4))
	}
	n := 16
	if n > p.MaxJobs {
		n = p.MaxJobs
	}
	add(fmt.Sprintf("staircase:n=%d", n), workload.Staircase(n))
	return seeds
}

// Run executes the hunt: evaluate the seed pool, evolve a population of
// mutated candidates under the evaluation budget, then delta-debug the
// champion. The returned report is deterministic for fixed Options
// (randomness is seeded; parallel evaluation collects by index).
func Run(ctx context.Context, o Options) (*Report, error) {
	o = o.withDefaults()
	rep := &Report{Options: o}
	mut := &mutator{rng: stats.NewRNG(o.Seed), p: o.Params}

	seeds := seedInstances(o.Params)
	if len(seeds) > o.Budget {
		seeds = seeds[:o.Budget]
	}
	if err := evaluateCandidates(ctx, seeds, o, rep); err != nil {
		return nil, err
	}
	pop := rankCandidates(seeds, o.Population)
	if len(pop) == 0 {
		return nil, fmt.Errorf("hunt: no viable seed candidate (budget %d, max jobs %d)", o.Budget, o.MaxJobs)
	}
	rep.SeedBest = pop[0]
	rep.Champion = pop[0]
	logf(o.Log, "seeds: %d evaluated, best %s ratio %.4f\n", len(seeds), pop[0].Origin, pop[0].Eval.Ratio)

	for rep.Evaluations < o.Budget {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		births := o.Population
		if remaining := o.Budget - rep.Evaluations; births > remaining {
			births = remaining
		}
		offspring := make([]*Candidate, 0, births)
		for len(offspring) < births {
			parent := tournament(mut.rng, pop)
			child := mut.mutate(parent.Instance)
			offspring = append(offspring, &Candidate{Instance: child, Origin: "mutant"})
		}
		if err := evaluateCandidates(ctx, offspring, o, rep); err != nil {
			return nil, err
		}
		pop = rankCandidates(append(pop, offspring...), o.Population)
		rep.Generations++
		if pop[0].Eval.Ratio > rep.Champion.Eval.Ratio {
			rep.Champion = pop[0]
			logf(o.Log, "gen %d: champion ratio %.4f (n=%d, evals %d)\n",
				rep.Generations, pop[0].Eval.Ratio, pop[0].Instance.N(), rep.Evaluations)
		}
	}
	rep.Improved = rep.Champion.Eval.Ratio > rep.SeedBest.Eval.Ratio

	if o.ShrinkBudget > 0 {
		sr, err := Shrink(ctx, rep.Champion.Instance, rep.Champion.Eval, o.Params, o.ShrinkTol, o.ShrinkBudget)
		if err != nil {
			return nil, err
		}
		rep.Shrunk = &Candidate{Instance: sr.Instance, Eval: sr.Eval, Origin: "shrunk"}
		rep.ShrinkEvals, rep.ShrinkSteps = sr.Evals, sr.Steps
		if o.Monitor != nil {
			o.Monitor.CheckEvaluation("shrunk", sr.Instance, sr.Eval)
		}
		logf(o.Log, "shrunk: n %d → %d, ratio %.4f (%d steps, %d evals)\n",
			rep.Champion.Instance.N(), sr.Instance.N(), sr.Eval.Ratio, sr.Steps, sr.Evals)
	}
	if o.Monitor != nil {
		if rep.Shrunk != nil {
			o.Monitor.CheckCertificate("shrunk-champion", rep.Shrunk.Instance)
		} else {
			o.Monitor.CheckCertificate("champion", rep.Champion.Instance)
		}
		rep.Anomalies = o.Monitor.Anomalies()
	}
	return rep, nil
}

// evaluateCandidates evaluates cands (attaching streaming monitors when
// configured), fills in Eval and fingerprint, counts against the report's
// budget, and routes every evaluation through the monitor.
func evaluateCandidates(ctx context.Context, cands []*Candidate, o Options, rep *Report) error {
	ins := make([]*core.Instance, len(cands))
	for i, c := range cands {
		ins[i] = c.Instance
	}
	mm := core.Machines{Speeds: o.MachineSpeeds, PreemptCost: o.PreemptCost}
	var observe func(i int) core.Observer
	var streams []*StreamMonitor
	if o.Monitor != nil {
		streams = make([]*StreamMonitor, len(cands))
		observe = func(i int) core.Observer {
			streams[i] = NewStreamMonitorModel(o.Machines, o.Speed, mm)
			return streams[i]
		}
	}
	evs, err := evaluateAll(ctx, ins, o.Params, observe)
	if err != nil {
		return err
	}
	for i, c := range cands {
		c.Eval = evs[i]
		c.fingerprint = core.Fingerprint(c.Instance, "RR", core.Options{Machines: o.Machines, Speed: o.Speed, MachineModel: mm})
		rep.Evaluations++
		if o.Monitor != nil {
			o.Monitor.CheckEvaluation(c.Origin, c.Instance, c.Eval)
			o.Monitor.absorb(c.Origin, streams[i])
		}
	}
	return nil
}

// rankCandidates sorts by ratio (descending), breaking exact ties toward
// smaller instances and then by fingerprint so the order — and therefore
// the whole search trajectory — is deterministic. Duplicate instances
// (identical fingerprints) and unviable candidates (degenerate bound) are
// dropped; the top `keep` survive.
func rankCandidates(cands []*Candidate, keep int) []*Candidate {
	seen := make(map[string]bool, len(cands))
	kept := cands[:0]
	for _, c := range cands {
		if c.Eval.Ratio < 0 || seen[c.fingerprint] {
			continue
		}
		seen[c.fingerprint] = true
		kept = append(kept, c)
	}
	sort.Slice(kept, func(a, b int) bool {
		ca, cb := kept[a], kept[b]
		if ca.Eval.Ratio != cb.Eval.Ratio {
			return ca.Eval.Ratio > cb.Eval.Ratio
		}
		if na, nb := ca.Instance.N(), cb.Instance.N(); na != nb {
			return na < nb
		}
		return ca.fingerprint < cb.fingerprint
	})
	if len(kept) > keep {
		kept = kept[:keep]
	}
	return kept
}

// tournament picks the better of two uniformly chosen population members —
// mild selection pressure toward high ratios without collapsing diversity.
func tournament(rng interface{ IntN(int) int }, pop []*Candidate) *Candidate {
	a, b := pop[rng.IntN(len(pop))], pop[rng.IntN(len(pop))]
	if b.Eval.Ratio > a.Eval.Ratio {
		return b
	}
	return a
}

func logf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

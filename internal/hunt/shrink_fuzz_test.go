package hunt

import (
	"context"
	"math"
	"testing"

	"rrnorm/internal/check"
	"rrnorm/internal/core"
	"rrnorm/internal/workload"
)

// FuzzShrinker fuzzes the shrinker's contract over seeded random
// instances: whatever the input, the shrunk witness must validate, never
// gain jobs, and keep its recomputed ratio inside the two-sided tolerance
// window around the pre-shrink ratio. Run with
//
//	go test -fuzz=FuzzShrinker ./internal/hunt
//
// to explore beyond the seed corpus; under plain `go test` the f.Add seeds
// run as regular test cases.
func FuzzShrinker(f *testing.F) {
	for seed := uint64(0); seed < 12; seed++ {
		f.Add(seed, uint8(2), false)
	}
	f.Add(uint64(1), uint8(1), true)
	f.Add(uint64(2), uint8(3), true)
	f.Fuzz(func(t *testing.T, seed uint64, k uint8, multi bool) {
		p := Params{K: 1 + int(k)%3, MaxJobs: 64}
		if multi {
			p.Machines = 2
		}
		p = p.withDefaults()
		in := check.RandomInstance(seed)
		if in.N() > p.MaxJobs {
			in = core.NewInstance(append([]core.Job(nil), in.Jobs[:p.MaxJobs]...))
		}
		ev, err := Evaluate(in, p)
		if err != nil {
			t.Skip() // RandomInstance can exceed LP limits; not the shrinker's fault
		}
		const tol = 1e-3
		sr, err := Shrink(context.Background(), in, ev, p, tol, 60)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := sr.Instance.Validate(); err != nil {
			t.Fatalf("seed %d: shrunk instance invalid: %v", seed, err)
		}
		if sr.Instance.N() > in.N() {
			t.Fatalf("seed %d: shrinker grew the instance %d -> %d", seed, in.N(), sr.Instance.N())
		}
		if ev.Ratio >= 0 {
			// Recompute from scratch — the contract is about the witness,
			// not the shrinker's bookkeeping.
			rev, err := Evaluate(sr.Instance, p)
			if err != nil {
				t.Fatalf("seed %d: re-evaluating shrunk witness: %v", seed, err)
			}
			if d := math.Abs(rev.Ratio - ev.Ratio); d > tol*(1+ev.Ratio)+1e-9 {
				t.Fatalf("seed %d: shrunk ratio %.9g drifted %g from pre-shrink %.9g (window %g)",
					seed, rev.Ratio, d, ev.Ratio, tol*(1+ev.Ratio))
			}
		}
		if sr.Evals > 60 {
			t.Fatalf("seed %d: shrinker overspent: %d evals", seed, sr.Evals)
		}
	})
}

// TestShrinkRemovesPadding: jobs that contribute nothing to either side of
// the ratio (zero-size padding) are shrunk away, and the witness keeps the
// original ratio exactly.
func TestShrinkRemovesPadding(t *testing.T) {
	p := Params{K: 2}.withDefaults()
	base := workload.RRStream(6, 1)
	baseEv, err := Evaluate(base, p)
	if err != nil {
		t.Fatal(err)
	}
	jobs := append([]core.Job(nil), base.Jobs...)
	for i := 0; i < 6; i++ {
		jobs = append(jobs, core.Job{ID: len(jobs), Release: float64(i), Size: 0})
	}
	padded := core.NewInstance(jobs)
	ev, err := Evaluate(padded, p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Shrink(context.Background(), padded, ev, p, 1e-3, 300)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Instance.N() >= padded.N() {
		t.Errorf("shrinker kept all %d jobs (padding not removed)", padded.N())
	}
	if sr.Steps == 0 {
		t.Error("no accepted shrink steps on a shrinkable instance")
	}
	if d := math.Abs(sr.Eval.Ratio - baseEv.Ratio); d > 2e-3*(1+baseEv.Ratio) {
		t.Errorf("shrunk ratio %.6f far from unpadded %.6f", sr.Eval.Ratio, baseEv.Ratio)
	}
}

// TestShrinkDegenerateInputs: unviable or trivial inputs come back
// unchanged without spending budget.
func TestShrinkDegenerateInputs(t *testing.T) {
	p := Params{K: 2}.withDefaults()
	one := core.NewInstance([]core.Job{{ID: 0, Size: 1}})
	ev, err := Evaluate(one, p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Shrink(context.Background(), one, ev, p, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Instance != one || sr.Evals != 0 {
		t.Errorf("single-job instance was shrunk: %+v", sr)
	}

	zero := core.NewInstance([]core.Job{{ID: 0, Size: 0}, {ID: 1, Size: 0}})
	zev, err := Evaluate(zero, p)
	if err != nil {
		t.Fatal(err)
	}
	if zev.Ratio >= 0 {
		t.Fatalf("zero-work instance has viable ratio %g", zev.Ratio)
	}
	sr, err = Shrink(context.Background(), zero, zev, p, 1e-3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Instance != zero || sr.Evals != 0 {
		t.Errorf("degenerate-ratio instance was shrunk: %+v", sr)
	}
}

// TestShrinkDeterministic: shrinking is a pure function of its inputs.
func TestShrinkDeterministic(t *testing.T) {
	p := Params{K: 2}.withDefaults()
	in := workload.Cascade(4, 0.8)
	ev, err := Evaluate(in, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Shrink(context.Background(), in, ev, p, 1e-3, 120)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Shrink(context.Background(), in, ev, p, 1e-3, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !sameJobs(a.Instance, b.Instance) || a.Evals != b.Evals || a.Steps != b.Steps {
		t.Fatalf("shrink not deterministic: %+v vs %+v", a, b)
	}
}

// TestShrinkHonorsBudget: the shrinker never evaluates more than its
// budget allows.
func TestShrinkHonorsBudget(t *testing.T) {
	p := Params{K: 2}.withDefaults()
	in := workload.RRStream(8, 1)
	ev, err := Evaluate(in, p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Shrink(context.Background(), in, ev, p, 1e-3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Evals > 5 {
		t.Fatalf("budget 5, spent %d", sr.Evals)
	}
}

package hunt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rrnorm/internal/core"
)

// CorpusVersion is the on-disk corpus format version. Readers reject
// versions they do not know; bump it on any incompatible change.
const CorpusVersion = 1

// corpusExt is the file extension corpus entries use.
const corpusExt = ".json"

// EntryJob is one job of a corpus entry (Weight omitted while the hunt
// objective is unweighted).
type EntryJob struct {
	ID      int     `json:"id"`
	Release float64 `json:"release"`
	Size    float64 `json:"size"`
	Weight  float64 `json:"weight,omitempty"`
}

// Entry is one committed regression witness: a shrunk hard instance
// together with everything needed to reproduce its recorded ratio —
// the hunt cell (k, machines, speed), the LP discretization, and the
// provenance (seed, budget, origin) of the run that found it. Entries
// contain no timestamps or host details, so regenerating one with the
// same options is byte-stable.
type Entry struct {
	Version int    `json:"version"`
	Name    string `json:"name"`

	// The hunt cell and LP discretization the recorded ratio was measured
	// under; Reevaluate replays with exactly these.
	K        int     `json:"k"`
	Machines int     `json:"machines"`
	Speed    float64 `json:"speed"`
	// MachineSpeeds/PreemptCost record the RR side's machine model when it
	// was heterogeneous; both omitted for the identical-unit-machine cells,
	// so the pre-existing corpus format is unchanged.
	MachineSpeeds []float64 `json:"machineSpeeds,omitempty"`
	PreemptCost   float64   `json:"preemptCost,omitempty"`
	LBSlots       int       `json:"lbSlots"`
	LBMaxUnits    int64     `json:"lbMaxUnits"`

	// Provenance: the search run that produced the witness.
	Seed   uint64 `json:"seed"`
	Budget int    `json:"budget"`
	Origin string `json:"origin"`

	// The recorded measurements (the replay test reproduces Ratio to 1e-6).
	Ratio      float64 `json:"ratio"`
	NormRatio  float64 `json:"normRatio"`
	RRPower    float64 `json:"rrPower"`
	LowerBound float64 `json:"lowerBound"`

	Jobs []EntryJob `json:"jobs"`
}

// FromReport packages a hunt report's shrunk witness (or, if shrinking was
// disabled, its champion) as a corpus entry named name.
func FromReport(rep *Report, name string) (*Entry, error) {
	c := rep.Shrunk
	if c == nil {
		c = rep.Champion
	}
	if c == nil || c.Eval == nil {
		return nil, fmt.Errorf("hunt: report has no witness to commit")
	}
	p := rep.Options.Params
	e := &Entry{
		Version:       CorpusVersion,
		Name:          name,
		K:             p.K,
		Machines:      p.Machines,
		Speed:         p.Speed,
		MachineSpeeds: p.MachineSpeeds,
		PreemptCost:   p.PreemptCost,
		LBSlots:       p.LBSlots,
		LBMaxUnits:    p.LBMaxUnits,
		Seed:          rep.Options.Seed,
		Budget:        rep.Options.Budget,
		Origin:        c.Origin,
		Ratio:         c.Eval.Ratio,
		NormRatio:     c.Eval.NormRatio,
		RRPower:       c.Eval.RRPower,
		LowerBound:    c.Eval.LB.Value,
	}
	for _, j := range c.Instance.Jobs {
		e.Jobs = append(e.Jobs, EntryJob{ID: j.ID, Release: j.Release, Size: j.Size, Weight: j.Weight})
	}
	return e, e.Validate()
}

// Validate checks structural sanity: known version, a populated hunt cell,
// finite recorded quantities, and a valid instance.
func (e *Entry) Validate() error {
	if e.Version != CorpusVersion {
		return fmt.Errorf("corpus entry %q: unknown version %d (want %d)", e.Name, e.Version, CorpusVersion)
	}
	if e.Name == "" {
		return fmt.Errorf("corpus entry: empty name")
	}
	if e.K < 1 || e.Machines < 1 || e.Speed <= 0 {
		return fmt.Errorf("corpus entry %q: bad cell k=%d m=%d s=%g", e.Name, e.K, e.Machines, e.Speed)
	}
	mm := core.Machines{Speeds: e.MachineSpeeds, PreemptCost: e.PreemptCost}
	if err := mm.Validate(e.Machines); err != nil {
		return fmt.Errorf("corpus entry %q: %w", e.Name, err)
	}
	if len(e.Jobs) == 0 {
		return fmt.Errorf("corpus entry %q: no jobs", e.Name)
	}
	for _, v := range []float64{e.Ratio, e.NormRatio, e.RRPower, e.LowerBound} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("corpus entry %q: non-finite recorded quantity", e.Name)
		}
	}
	return e.Instance().Validate()
}

// Instance materializes the entry's jobs.
func (e *Entry) Instance() *core.Instance {
	jobs := make([]core.Job, len(e.Jobs))
	for i, j := range e.Jobs {
		jobs[i] = core.Job{ID: j.ID, Release: j.Release, Size: j.Size, Weight: j.Weight}
	}
	return core.NewInstance(jobs)
}

// Params returns the evaluation parameters the entry's ratio was recorded
// under (MaxJobs sized to fit the entry itself).
func (e *Entry) Params() Params {
	return Params{
		K:             e.K,
		Machines:      e.Machines,
		Speed:         e.Speed,
		MachineSpeeds: e.MachineSpeeds,
		PreemptCost:   e.PreemptCost,
		MaxJobs:       len(e.Jobs),
		LBSlots:       e.LBSlots,
		LBMaxUnits:    e.LBMaxUnits,
	}.withDefaults()
}

// Reevaluate replays the entry under its recorded parameters; the replay
// tests assert the result matches the recorded ratio to 1e-6.
func (e *Entry) Reevaluate() (*Evaluation, error) {
	return Evaluate(e.Instance(), e.Params())
}

// WriteEntry writes the entry as <dir>/<name>.json (dir is created if
// needed). The encoding is canonical — struct field order, indented — so
// regenerated entries diff cleanly.
func WriteEntry(dir string, e *Entry) (string, error) {
	if err := e.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, e.Name+corpusExt)
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadEntry reads and validates one corpus entry.
func ReadEntry(path string) (*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("corpus %s: %w", path, err)
	}
	if err := e.Validate(); err != nil {
		return nil, fmt.Errorf("corpus %s: %w", path, err)
	}
	return &e, nil
}

// LoadCorpus reads every *.json entry under dir, sorted by filename (a
// deterministic replay order). A missing directory is an empty corpus, not
// an error — callers decide whether emptiness is suspicious.
func LoadCorpus(dir string) ([]*Entry, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), corpusExt) {
			names = append(names, de.Name())
		}
	}
	sort.Strings(names)
	entries := make([]*Entry, 0, len(names))
	for _, name := range names {
		e, err := ReadEntry(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

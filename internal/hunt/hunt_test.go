package hunt

import (
	"bytes"
	"context"
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// smallOpts is the cheap hunt configuration the tests share: enough budget
// to clear the seed pool and evolve a few generations, small enough to
// keep tier-1 fast.
func smallOpts() Options {
	return Options{
		Params:       Params{K: 2, MaxJobs: 36},
		Seed:         1,
		Budget:       120,
		Population:   12,
		ShrinkBudget: 80,
	}
}

func runHunt(t *testing.T, o Options) *Report {
	t.Helper()
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRunDeterminism pins the hunt's central operational property: equal
// options give byte-identical reports, including across the parallel
// evaluation pipeline (results are collected by index, randomness is
// seeded, and no timing enters the report).
func TestRunDeterminism(t *testing.T) {
	o := smallOpts()
	o.Monitor = NewMonitor(o.Params)
	var a, b bytes.Buffer
	if err := runHunt(t, o).WriteText(&a); err != nil {
		t.Fatal(err)
	}
	o.Monitor = NewMonitor(o.Params)
	if err := runHunt(t, o).WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two identical hunts produced different reports:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	// Different Workers settings must not change the report either.
	o.Monitor = nil
	o.Workers = 1
	var c bytes.Buffer
	if err := runHunt(t, o).WriteText(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatalf("Workers=1 changed the report:\n--- parallel\n%s\n--- serial\n%s", a.String(), c.String())
	}
}

// TestRunImprovesAndStaysClean: with a modest budget the search must beat
// the best analytic seed, shrink its champion, and keep every monitor
// silent — the in-tree version of the PR's acceptance criterion.
func TestRunImprovesAndStaysClean(t *testing.T) {
	o := smallOpts()
	o.Budget = 220
	o.Monitor = NewMonitor(o.Params)
	rep := runHunt(t, o)
	if rep.SeedBest == nil || rep.Champion == nil || rep.Shrunk == nil {
		t.Fatalf("report missing candidates: %+v", rep)
	}
	if !rep.Improved {
		t.Errorf("search did not improve on seed best %.4f (champion %.4f)",
			rep.SeedBest.Eval.Ratio, rep.Champion.Eval.Ratio)
	}
	if rep.Shrunk.Instance.N() > rep.Champion.Instance.N() {
		t.Errorf("shrinker grew the witness: %d -> %d jobs", rep.Champion.Instance.N(), rep.Shrunk.Instance.N())
	}
	window := o.ShrinkTol
	if window <= 0 {
		window = 1e-3
	}
	if d := math.Abs(rep.Shrunk.Eval.Ratio - rep.Champion.Eval.Ratio); d > window*(1+rep.Champion.Eval.Ratio) {
		t.Errorf("shrunk ratio %.6f drifted %g from champion %.6f", rep.Shrunk.Eval.Ratio, d, rep.Champion.Eval.Ratio)
	}
	if len(rep.Anomalies) != 0 {
		t.Errorf("monitors fired on a healthy tree: %v", rep.Anomalies)
	}
	if rep.Evaluations > o.Budget {
		t.Errorf("search overspent: %d evaluations, budget %d", rep.Evaluations, o.Budget)
	}
	if got := o.Monitor.Checked(); got < rep.Evaluations {
		t.Errorf("monitor checked %d of %d evaluations", got, rep.Evaluations)
	}
}

// TestRunRespectsContext: a cancelled context aborts the hunt with the
// context's error.
func TestRunRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, smallOpts()); err == nil {
		t.Fatal("cancelled hunt returned nil error")
	}
}

// TestEvaluate checks the evaluator against hand-computable ground truth:
// the RR stream completes all jobs simultaneously, and the ratio is
// invariant under time scaling (both numerator and denominator scale by
// the same power of the scale factor).
func TestEvaluate(t *testing.T) {
	p := Params{K: 2}
	in := workload.RRStream(8, 1)
	ev, err := Evaluate(in, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Ratio <= 1 {
		t.Fatalf("RR stream ratio %.4f not above 1", ev.Ratio)
	}
	if ev.LB.Value <= 0 || ev.UnitBest() < ev.LB.Value {
		t.Fatalf("bound ordering broken: LB %.6g, achieved %.6g", ev.LB.Value, ev.UnitBest())
	}
	if got, want := ev.NormRatio, math.Sqrt(ev.Ratio); math.Abs(got-want) > 1e-12*(1+want) {
		t.Fatalf("NormRatio %.9g != sqrt(Ratio) %.9g", got, want)
	}

	// Time-scaled copy: releases and sizes both ×3.
	jobs := append([]core.Job(nil), in.Jobs...)
	for i := range jobs {
		jobs[i].Release *= 3
		jobs[i].Size *= 3
	}
	ev3, err := Evaluate(core.NewInstance(jobs), p)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ev3.Ratio - ev.Ratio); d > 0.05*ev.Ratio {
		t.Fatalf("ratio not scale-invariant: %.4f vs %.4f", ev.Ratio, ev3.Ratio)
	}
}

// TestEvaluateAllMatchesEvaluate: the batch path and the single path are
// the same computation.
func TestEvaluateAllMatchesEvaluate(t *testing.T) {
	p := Params{K: 3, Machines: 2, Speed: 1.5}
	ins := []*core.Instance{
		workload.RRStreamS(6, 2, 1.5),
		workload.Cascade(4, 0.8),
		workload.Staircase(9),
	}
	all, err := EvaluateAll(context.Background(), ins, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, in := range ins {
		one, err := Evaluate(in, p)
		if err != nil {
			t.Fatal(err)
		}
		same := one.RRPower == all[i].RRPower &&
			one.UnitRRPower == all[i].UnitRRPower &&
			one.UnitSRPTPower == all[i].UnitSRPTPower &&
			one.LB.Value == all[i].LB.Value &&
			one.Ratio == all[i].Ratio &&
			one.NormRatio == all[i].NormRatio
		if !same {
			t.Errorf("instance %d: EvaluateAll %+v != Evaluate %+v", i, all[i], one)
		}
	}
}

// TestEvaluateRejectsGarbage: invalid instances and cap violations error
// instead of producing silent nonsense.
func TestEvaluateRejectsGarbage(t *testing.T) {
	p := Params{K: 2, MaxJobs: 4}
	if _, err := Evaluate(workload.RRStream(8, 1), p); err == nil {
		t.Error("over-cap instance accepted")
	}
	bad := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: math.NaN()}})
	if _, err := Evaluate(bad, Params{K: 2}); err == nil {
		t.Error("NaN-size instance accepted")
	}
}

// TestSeedInstances: every seed respects the job cap and validates, and the
// pool covers at least the stream + cascade families.
func TestSeedInstances(t *testing.T) {
	for _, p := range []Params{{K: 2}, {K: 1, Machines: 3, Speed: 2}, {K: 2, MaxJobs: 7}} {
		p = p.withDefaults()
		seeds := seedInstances(p)
		if len(seeds) == 0 {
			t.Fatalf("no seeds for %+v", p)
		}
		for _, c := range seeds {
			if err := c.Instance.Validate(); err != nil {
				t.Errorf("seed %s invalid: %v", c.Origin, err)
			}
			if n := c.Instance.N(); n < 1 || n > p.MaxJobs {
				t.Errorf("seed %s has %d jobs, cap %d", c.Origin, n, p.MaxJobs)
			}
		}
	}
}

// TestMutatorProducesValidCandidates: whatever sequence of operators fires,
// the result validates, respects the cap, and leaves the parent untouched.
func TestMutatorProducesValidCandidates(t *testing.T) {
	p := Params{K: 2, MaxJobs: 20}.withDefaults()
	m := &mutator{rng: stats.NewRNG(1), p: p}
	parent := workload.RRStream(6, 1)
	orig := append([]core.Job(nil), parent.Jobs...)
	for i := 0; i < 500; i++ {
		child := m.mutate(parent)
		if err := child.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		if n := child.N(); n < 1 || n > p.MaxJobs {
			t.Fatalf("mutation %d has %d jobs, cap %d", i, n, p.MaxJobs)
		}
		for j, job := range child.Jobs {
			if job.ID != j {
				t.Fatalf("mutation %d: job %d has ID %d (want dense)", i, j, job.ID)
			}
		}
	}
	for i := range orig {
		if parent.Jobs[i] != orig[i] {
			t.Fatal("mutate modified its input")
		}
	}
}

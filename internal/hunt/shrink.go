package hunt

import (
	"context"
	"math"

	"rrnorm/internal/core"
)

// ShrinkResult is the outcome of delta-debugging one champion.
type ShrinkResult struct {
	// Instance is the minimized witness and Eval its (re-)evaluation.
	Instance *core.Instance
	Eval     *Evaluation
	// Evals counts evaluations spent; Steps counts accepted shrink steps.
	Evals int
	Steps int
}

// Shrink delta-debugs an instance while (approximately) preserving its
// ratio: it greedily tries removing job chunks (ddmin-style halving),
// rounding sizes to few significant digits, and merging nearby releases
// onto a common instant, accepting a step only while the recomputed ratio
// stays within ±tol·(1+ratio) of the ORIGINAL ratio — two-sided, so a
// shrunk witness documents the champion's ratio, it does not hunt further.
// The contract FuzzShrinker pins:
//
//   - the result always satisfies Instance.Validate();
//   - the result never has more jobs than the input;
//   - the result's recomputed ratio never exceeds the pre-shrink ratio
//     plus the tolerance window (nor undercuts it by more).
//
// ev must be in's evaluation under p (pass the one the search computed;
// Shrink trusts its Ratio as the reference). budget bounds the extra
// evaluations spent. Degenerate inputs (ratio < 0) are returned unchanged.
func Shrink(ctx context.Context, in *core.Instance, ev *Evaluation, p Params, tol float64, budget int) (*ShrinkResult, error) {
	p = p.withDefaults()
	res := &ShrinkResult{Instance: in, Eval: ev}
	if ev.Ratio < 0 || in.N() <= 1 {
		return res, nil
	}
	orig := ev.Ratio
	window := tol * (1 + orig)

	// accept evaluates a candidate and reports whether its ratio stays
	// inside the two-sided window. Out of budget → stop accepting.
	accept := func(cand *core.Instance) (*Evaluation, bool, error) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		if res.Evals >= budget {
			return nil, false, nil
		}
		res.Evals++
		cev, err := Evaluate(cand, p)
		if err != nil {
			// A shrink step that produces an unevaluable instance is simply
			// rejected; the input was evaluable, so the step is at fault.
			return nil, false, nil
		}
		if math.Abs(cev.Ratio-orig) > window {
			return nil, false, nil
		}
		return cev, true, nil
	}

	for pass := 0; pass < 8; pass++ {
		changed := false

		// 1. ddmin job removal: chunks of n/2, n/4, …, 1.
		for chunk := res.Instance.N() / 2; chunk >= 1; chunk /= 2 {
			for start := 0; start+chunk <= res.Instance.N() && res.Instance.N() > 1; {
				cand := removeRange(res.Instance, start, chunk)
				cev, ok, err := accept(cand)
				if err != nil {
					return nil, err
				}
				if ok {
					res.Instance, res.Eval = cand, cev
					res.Steps++
					changed = true
					// Same start now names the next chunk; don't advance.
					continue
				}
				start += chunk
			}
		}

		// 2. Size rounding, coarse to fine: the first precision whose
		// global rounding stays in the window wins.
		for _, digits := range []int{2, 3, 4, 6} {
			cand := roundSizes(res.Instance, digits)
			if sameJobs(cand, res.Instance) {
				break
			}
			cev, ok, err := accept(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Instance, res.Eval = cand, cev
				res.Steps++
				changed = true
				break
			}
		}

		// 3. Release merging: snap releases within a fraction of the mean
		// spacing onto their cluster's first release (exact ties simplify
		// the witness and exercise simultaneous-release engine paths).
		for _, frac := range []float64{0.5, 0.25, 0.1} {
			cand := mergeReleases(res.Instance, frac)
			if sameJobs(cand, res.Instance) {
				continue
			}
			cev, ok, err := accept(cand)
			if err != nil {
				return nil, err
			}
			if ok {
				res.Instance, res.Eval = cand, cev
				res.Steps++
				changed = true
				break
			}
		}

		if !changed || res.Evals >= budget {
			break
		}
	}
	return res, nil
}

// removeRange returns a copy of in without jobs [start, start+chunk),
// densely renumbered.
func removeRange(in *core.Instance, start, chunk int) *core.Instance {
	jobs := make([]core.Job, 0, in.N()-chunk)
	jobs = append(jobs, in.Jobs[:start]...)
	jobs = append(jobs, in.Jobs[start+chunk:]...)
	return renumber(jobs)
}

// roundSizes rounds every size to the given significant decimal digits.
func roundSizes(in *core.Instance, digits int) *core.Instance {
	jobs := append([]core.Job(nil), in.Jobs...)
	for i := range jobs {
		jobs[i].Size = roundSig(jobs[i].Size, digits)
	}
	return renumber(jobs)
}

// mergeReleases snaps each release to the previous one when they differ by
// less than frac × the mean inter-release spacing.
func mergeReleases(in *core.Instance, frac float64) *core.Instance {
	n := in.N()
	if n < 2 {
		return in
	}
	span := in.MaxRelease() - in.Jobs[0].Release
	eps := frac * span / float64(n)
	if eps <= 0 {
		return in
	}
	jobs := append([]core.Job(nil), in.Jobs...)
	for i := 1; i < n; i++ {
		if jobs[i].Release-jobs[i-1].Release < eps {
			jobs[i].Release = jobs[i-1].Release
		}
	}
	return renumber(jobs)
}

// renumber normalizes and densely re-IDs a job slice (the same canonical
// form the mutator produces).
func renumber(jobs []core.Job) *core.Instance {
	for i := range jobs {
		jobs[i].ID = i
	}
	out := core.NewInstance(jobs)
	for i := range out.Jobs {
		out.Jobs[i].ID = i
	}
	return out
}

// roundSig rounds x to d significant decimal digits (0 and non-finite pass
// through).
func roundSig(x float64, d int) float64 {
	if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
		return x
	}
	mag := math.Ceil(math.Log10(math.Abs(x)))
	scale := math.Pow(10, float64(d)-mag)
	return math.Round(x*scale) / scale
}

// sameJobs reports whether two normalized instances hold identical jobs.
func sameJobs(a, b *core.Instance) bool {
	if a.N() != b.N() {
		return false
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			return false
		}
	}
	return true
}

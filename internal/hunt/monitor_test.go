package hunt

import (
	"math"
	"strings"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/policy"
	"rrnorm/internal/workload"
)

func kinds(as []Anomaly) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Kind
	}
	return out
}

func wantKind(t *testing.T, as []Anomaly, kind string) {
	t.Helper()
	for _, a := range as {
		if a.Kind == kind {
			return
		}
	}
	t.Errorf("no %s anomaly in %v", kind, kinds(as))
}

// TestMonitorSilentOnHealthyEvaluations: real evaluations of the analytic
// families never trip a monitor.
func TestMonitorSilentOnHealthyEvaluations(t *testing.T) {
	for _, p := range []Params{{K: 1}, {K: 2}, {K: 2, Machines: 2, Speed: 2}, {K: 3, Speed: 0.5}} {
		p = p.withDefaults()
		m := NewMonitor(p)
		for _, in := range []*core.Instance{
			workload.RRStreamS(8, p.Machines, p.Speed),
			workload.Cascade(4, 0.8),
			workload.Staircase(10),
		} {
			ev, err := Evaluate(in, p)
			if err != nil {
				t.Fatal(err)
			}
			m.CheckEvaluation("healthy", in, ev)
		}
		if as := m.Anomalies(); len(as) != 0 {
			t.Errorf("params %+v: monitor fired on healthy evaluations: %v", p, as)
		}
		if m.Checked() != 3 {
			t.Errorf("checked %d, want 3", m.Checked())
		}
	}
}

// TestMonitorCertificateSilentOnHealthyInstances: the dual certificate at
// Theorem 1's speed verifies on real instances (and the implied bound
// holds), so CheckCertificate stays silent.
func TestMonitorCertificateSilentOnHealthyInstances(t *testing.T) {
	for _, k := range []int{1, 2} {
		m := NewMonitor(Params{K: k})
		m.CheckCertificate("healthy", workload.RRStream(6, 1))
		m.CheckCertificate("empty", core.NewInstance(nil))
		if as := m.Anomalies(); len(as) != 0 {
			t.Errorf("k=%d: certificate check fired on healthy instance: %v", k, as)
		}
	}
}

// TestMonitorFlagsSyntheticAnomalies: each evaluation-level anomaly kind is
// triggerable by a doctored Evaluation — the test that the net has no
// holes where it claims to have mesh.
func TestMonitorFlagsSyntheticAnomalies(t *testing.T) {
	in := workload.RRStream(4, 1)
	p := Params{K: 2}.withDefaults()
	ev, err := Evaluate(in, p)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("lb-above-achieved", func(t *testing.T) {
		m := NewMonitor(p)
		bad := *ev
		bad.LB.Value = bad.UnitBest() * 1.5
		m.CheckEvaluation("doctored", in, &bad)
		wantKind(t, m.Anomalies(), AnomLBAboveAchieved)
	})
	t.Run("rr-below-lb", func(t *testing.T) {
		m := NewMonitor(p) // Speed defaults to 1, so the check is armed
		bad := *ev
		bad.RRPower = bad.LB.Value / 2
		m.CheckEvaluation("doctored", in, &bad)
		wantKind(t, m.Anomalies(), AnomRRBelowLB)
	})
	t.Run("rr-below-lb-disarmed-at-speed", func(t *testing.T) {
		fastP := Params{K: 2, Speed: 4}.withDefaults()
		m := NewMonitor(fastP)
		bad := *ev
		bad.RRPower = bad.LB.Value / 2 // legitimate at speed 4
		m.CheckEvaluation("doctored", in, &bad)
		for _, a := range m.Anomalies() {
			if a.Kind == AnomRRBelowLB {
				t.Errorf("rr-below-lb fired at speed > 1: %v", a)
			}
		}
	})
	t.Run("non-finite", func(t *testing.T) {
		m := NewMonitor(p)
		bad := *ev
		bad.RRPower = math.NaN()
		m.CheckEvaluation("doctored", in, &bad)
		wantKind(t, m.Anomalies(), AnomNonFinite)
	})
	t.Run("bad-eps-certificate", func(t *testing.T) {
		m := NewMonitor(p)
		m.Eps = 0.5 // outside (0, 0.1]: witness construction must fail loudly
		m.CheckCertificate("doctored", in)
		wantKind(t, m.Anomalies(), AnomCertInfeasible)
	})
	t.Run("truncation", func(t *testing.T) {
		m := NewMonitor(p)
		bad := *ev
		bad.RRPower = math.NaN()
		for i := 0; i < maxAnomalies+10; i++ {
			m.CheckEvaluation("doctored", in, &bad)
		}
		as := m.Anomalies()
		if len(as) != maxAnomalies+1 {
			t.Fatalf("got %d anomalies, want %d + truncation marker", len(as), maxAnomalies)
		}
		if last := as[len(as)-1]; last.Kind != "truncated" || !strings.Contains(last.Msg, "dropped") {
			t.Errorf("missing truncation marker, got %v", last)
		}
	})
}

// TestStreamMonitorSilentOnRealRuns: attached to real engine runs across
// policies, speeds and machine counts, the streaming invariants all hold.
func TestStreamMonitorSilentOnRealRuns(t *testing.T) {
	cases := []struct {
		in       *core.Instance
		pol      core.Policy
		machines int
		speed    float64
	}{
		{workload.RRStream(8, 1), policy.NewRR(), 1, 1},
		{workload.RRStreamS(6, 2, 2), policy.NewRR(), 2, 2},
		{workload.Cascade(4, 0.8), policy.NewSRPT(), 1, 0.5},
		{workload.Staircase(12), policy.NewRR(), 3, 1},
	}
	for _, c := range cases {
		sm := NewStreamMonitor(c.machines, c.speed)
		_, err := fast.Run(c.in, c.pol, core.Options{Machines: c.machines, Speed: c.speed, Observer: sm})
		if err != nil {
			t.Fatal(err)
		}
		if as := sm.Anomalies(); len(as) != 0 {
			t.Errorf("%s m=%d s=%g: stream monitor fired on a real run: %v", c.pol.Name(), c.machines, c.speed, as)
		}
	}
}

// TestStreamMonitorFlagsBrokenStreams: synthetic observer call sequences
// that violate each invariant are caught.
func TestStreamMonitorFlagsBrokenStreams(t *testing.T) {
	job := core.Job{ID: 0, Release: 1, Size: 2}

	t.Run("epoch-reversed", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveEpoch(&core.Epoch{Start: 5, End: 3, RateSum: 1, Alive: 1})
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("epoch-overlap", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveEpoch(&core.Epoch{Start: 0, End: 2, RateSum: 1, Alive: 1})
		sm.ObserveEpoch(&core.Epoch{Start: 1, End: 3, RateSum: 1, Alive: 1})
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("rate-over-capacity", func(t *testing.T) {
		sm := NewStreamMonitor(2, 1)
		sm.ObserveEpoch(&core.Epoch{Start: 0, End: 1, RateSum: 2.5, Alive: 3})
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("completion-before-release", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveArrival(1, 0, job)
		sm.ObserveCompletion(0.5, 0, 2)
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("impossibly-fast-completion", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveArrival(1, 0, job)
		sm.ObserveCompletion(2, 0, 1) // flow 1 < size/speed = 2
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("negative-flow", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveArrival(1, 0, job)
		sm.ObserveCompletion(3, 0, -1)
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("double-completion", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveArrival(1, 0, job)
		sm.ObserveCompletion(3, 0, 2)
		sm.ObserveCompletion(4, 0, 3)
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("unknown-job", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveCompletion(3, 7, 2)
		wantKind(t, sm.Anomalies(), AnomStream)
	})
	t.Run("lost-completion", func(t *testing.T) {
		sm := NewStreamMonitor(1, 1)
		sm.ObserveArrival(1, 0, job)
		sm.ObserveDone(&core.Result{Flow: []float64{2}})
		wantKind(t, sm.Anomalies(), AnomStream)
	})
}

// TestMonitorAbsorb: stream findings surface in the monitor with their
// origin label.
func TestMonitorAbsorb(t *testing.T) {
	m := NewMonitor(Params{K: 2})
	sm := NewStreamMonitor(1, 1)
	sm.ObserveEpoch(&core.Epoch{Start: 5, End: 3, RateSum: 1, Alive: 1})
	m.absorb("mutant", sm)
	m.absorb("mutant", nil) // nil stream monitors are ignored
	as := m.Anomalies()
	if len(as) != 1 || as[0].Kind != AnomStream || !strings.Contains(as[0].Msg, "mutant") {
		t.Fatalf("absorb mangled findings: %v", as)
	}
}

package hunt

import (
	"fmt"
	"io"
)

// WriteText renders the report in a fixed, byte-deterministic layout: no
// timings, no host details, floats at full precision. Two runs with equal
// Options produce identical bytes — the property `make hunt-smoke` and the
// CLI tests pin.
func (r *Report) WriteText(w io.Writer) error {
	o := r.Options
	if _, err := fmt.Fprintf(w, "hunt: k=%d m=%d speed=%g seed=%d budget=%d pop=%d maxjobs=%d lp=%d/%d\n",
		o.K, o.Machines, o.Speed, o.Seed, o.Budget, o.Population, o.MaxJobs, o.LBSlots, o.LBMaxUnits); err != nil {
		return err
	}
	writeCand := func(role string, c *Candidate) error {
		if c == nil {
			_, err := fmt.Fprintf(w, "%s: none\n", role)
			return err
		}
		_, err := fmt.Fprintf(w, "%s: %s n=%d ratio=%.9g norm-ratio=%.9g rr-power=%.9g lb=%.9g (%s)\n",
			role, c.Origin, c.Instance.N(), c.Eval.Ratio, c.Eval.NormRatio, c.Eval.RRPower, c.Eval.LB.Value, c.Eval.LB.Method)
		return err
	}
	if err := writeCand("seed-best", r.SeedBest); err != nil {
		return err
	}
	if err := writeCand("champion", r.Champion); err != nil {
		return err
	}
	if err := writeCand("shrunk", r.Shrunk); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "spend: evaluations=%d generations=%d shrink-evals=%d shrink-steps=%d\n",
		r.Evaluations, r.Generations, r.ShrinkEvals, r.ShrinkSteps); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "improved-over-seeds: %v\n", r.Improved); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "anomalies: %d\n", len(r.Anomalies)); err != nil {
		return err
	}
	for _, a := range r.Anomalies {
		if _, err := fmt.Fprintf(w, "  %s\n", a); err != nil {
			return err
		}
	}
	if c := r.Shrunk; c != nil {
		if _, err := fmt.Fprintf(w, "witness jobs (id release size):\n"); err != nil {
			return err
		}
		for _, j := range c.Instance.Jobs {
			if _, err := fmt.Fprintf(w, "  %d %.9g %.9g\n", j.ID, j.Release, j.Size); err != nil {
				return err
			}
		}
	}
	return nil
}

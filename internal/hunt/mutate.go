package hunt

import (
	"math"
	"math/rand/v2"

	"rrnorm/internal/core"
)

// Mutation magnitude and safety bounds. Mutated instances must stay inside
// the region the LP discretization handles well: releases and sizes are
// clamped to [0, maxMagnitude] and candidate job counts to [1, MaxJobs].
const (
	maxMagnitude = 1e6
	sizeSigma    = 0.25 // log-normal σ of a size jitter step
)

// mutator applies the hunt's local perturbations and structural moves to
// candidate instances. All randomness comes from the injected rng, so a
// seeded hunt is fully deterministic. Every returned instance is
// normalized, densely re-numbered and valid.
type mutator struct {
	rng *rand.Rand
	p   Params
}

// mutate returns a perturbed copy of in: 1–3 randomly chosen operators
// applied in sequence. The input is never modified.
func (m *mutator) mutate(in *core.Instance) *core.Instance {
	jobs := append([]core.Job(nil), in.Jobs...)
	steps := 1 + m.rng.IntN(3)
	for s := 0; s < steps; s++ {
		switch m.rng.IntN(8) {
		case 0:
			jobs = m.jitterSizes(jobs)
		case 1:
			jobs = m.jitterReleases(jobs)
		case 2:
			jobs = m.splitJob(jobs)
		case 3:
			jobs = m.mergeJobs(jobs)
		case 4:
			jobs = m.stretchPhase(jobs)
		case 5:
			jobs = m.extendStream(jobs)
		case 6:
			jobs = m.cloneJob(jobs)
		default:
			jobs = m.dropJob(jobs)
		}
	}
	return m.finish(jobs)
}

// finish clamps, renumbers and normalizes a mutated job slice into a valid
// candidate within the size cap.
func (m *mutator) finish(jobs []core.Job) *core.Instance {
	if len(jobs) == 0 {
		jobs = []core.Job{{Release: 0, Size: 1}}
	}
	if len(jobs) > m.p.MaxJobs {
		jobs = jobs[:m.p.MaxJobs]
	}
	for i := range jobs {
		jobs[i].Release = clamp(jobs[i].Release)
		jobs[i].Size = clamp(jobs[i].Size)
		jobs[i].Weight = 0 // the hunt objective is unweighted
		jobs[i].ID = i     // temporary: unique pre-normalization
	}
	out := core.NewInstance(jobs)
	// Dense IDs in (Release, ID) order keep fingerprints canonical and the
	// corpus format tidy.
	for i := range out.Jobs {
		out.Jobs[i].ID = i
	}
	return out
}

func clamp(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > maxMagnitude {
		return maxMagnitude
	}
	return x
}

// jitterSizes multiplies a random subset of sizes by a log-normal factor —
// the smallest-grain local move.
func (m *mutator) jitterSizes(jobs []core.Job) []core.Job {
	for i := range jobs {
		if m.rng.IntN(4) == 0 {
			jobs[i].Size *= math.Exp(m.rng.NormFloat64() * sizeSigma)
		}
	}
	return jobs
}

// jitterReleases shifts a random subset of releases by a fraction of the
// instance's typical inter-arrival spacing.
func (m *mutator) jitterReleases(jobs []core.Job) []core.Job {
	span := releaseSpan(jobs)
	step := span / float64(len(jobs)+1)
	if step <= 0 {
		step = 0.5
	}
	for i := range jobs {
		if m.rng.IntN(4) == 0 {
			jobs[i].Release += step * (m.rng.Float64()*2 - 1)
		}
	}
	return jobs
}

// splitJob replaces one job by two half-size jobs at the same release —
// burst splitting.
func (m *mutator) splitJob(jobs []core.Job) []core.Job {
	if len(jobs) >= m.p.MaxJobs {
		return jobs
	}
	i := m.rng.IntN(len(jobs))
	half := jobs[i].Size / 2
	jobs[i].Size = half
	return append(jobs, core.Job{Release: jobs[i].Release, Size: half})
}

// mergeJobs merges two jobs into one carrying their summed size at the
// earlier release — burst merging.
func (m *mutator) mergeJobs(jobs []core.Job) []core.Job {
	if len(jobs) < 2 {
		return jobs
	}
	i := m.rng.IntN(len(jobs) - 1)
	j := i + 1 // neighbors after normalization: similar releases
	jobs[i].Size += jobs[j].Size
	if jobs[j].Release < jobs[i].Release {
		jobs[i].Release = jobs[j].Release
	}
	return append(jobs[:j], jobs[j+1:]...)
}

// stretchPhase scales all releases at or after a random cut time by a
// factor around 1 — stream-phase stretching (the sizes are left alone, so
// the stretch changes the load profile, not just the clock).
func (m *mutator) stretchPhase(jobs []core.Job) []core.Job {
	span := releaseSpan(jobs)
	cut := m.rng.Float64() * span
	factor := 0.7 + 0.6*m.rng.Float64() // [0.7, 1.3)
	for i := range jobs {
		if jobs[i].Release >= cut {
			jobs[i].Release = cut + (jobs[i].Release-cut)*factor
		}
	}
	return jobs
}

// extendStream appends a job after the last release, sized near the median
// job — the move that lets the hunt continue an adversarial stream past
// its engineered end (the probes show this is where RR's empirical ratio
// keeps growing).
func (m *mutator) extendStream(jobs []core.Job) []core.Job {
	if len(jobs) >= m.p.MaxJobs {
		return jobs
	}
	last, step := 0.0, 1.0
	if n := len(jobs); n > 0 {
		last = jobs[n-1].Release
		if span := releaseSpan(jobs); span > 0 {
			step = span / float64(n)
		}
	}
	size := medianSize(jobs) * math.Exp(m.rng.NormFloat64()*sizeSigma)
	return append(jobs, core.Job{Release: last + step*(0.5+m.rng.Float64()), Size: size})
}

// cloneJob duplicates a random job (exact release tie, exercising the
// engines' simultaneous-release paths).
func (m *mutator) cloneJob(jobs []core.Job) []core.Job {
	if len(jobs) >= m.p.MaxJobs {
		return jobs
	}
	i := m.rng.IntN(len(jobs))
	return append(jobs, core.Job{Release: jobs[i].Release, Size: jobs[i].Size})
}

// dropJob removes a random job.
func (m *mutator) dropJob(jobs []core.Job) []core.Job {
	if len(jobs) < 2 {
		return jobs
	}
	i := m.rng.IntN(len(jobs))
	return append(jobs[:i], jobs[i+1:]...)
}

func releaseSpan(jobs []core.Job) float64 {
	var lo, hi float64
	for i, j := range jobs {
		if i == 0 || j.Release < lo {
			lo = j.Release
		}
		if j.Release > hi {
			hi = j.Release
		}
	}
	return hi - lo
}

func medianSize(jobs []core.Job) float64 {
	if len(jobs) == 0 {
		return 1
	}
	sizes := make([]float64, len(jobs))
	for i, j := range jobs {
		sizes[i] = j.Size
	}
	// Insertion sort: n ≤ MaxJobs, and this runs once per mutation step.
	for i := 1; i < len(sizes); i++ {
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	med := sizes[len(sizes)/2]
	if med <= 0 {
		return 1
	}
	return med
}

package hunt

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpusRoundtrip: a hunt's witness survives FromReport → WriteEntry →
// ReadEntry → LoadCorpus with its recorded ratio reproducing under
// Reevaluate — the exact loop the committed corpus and its replay test
// rely on.
func TestCorpusRoundtrip(t *testing.T) {
	o := smallOpts()
	rep := runHunt(t, o)
	e, err := FromReport(rep, "roundtrip-k2")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "corpus")
	path, err := WriteEntry(dir, e)
	if err != nil {
		t.Fatal(err)
	}

	got, err := ReadEntry(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != e.Name || got.K != e.K || got.Machines != e.Machines ||
		got.Speed != e.Speed || got.Seed != e.Seed || got.Ratio != e.Ratio ||
		len(got.Jobs) != len(e.Jobs) {
		t.Fatalf("roundtrip mangled entry:\nwrote %+v\nread  %+v", e, got)
	}

	ev, err := got.Reevaluate()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ev.Ratio - got.Ratio); d > 1e-6*(1+got.Ratio) {
		t.Errorf("replayed ratio %.9g differs from recorded %.9g by %g", ev.Ratio, got.Ratio, d)
	}

	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != e.Name {
		t.Fatalf("LoadCorpus got %d entries", len(entries))
	}
	// Writing is byte-stable: a second write of the same entry is a no-op
	// diff-wise.
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("rewriting an unchanged entry changed its bytes")
	}
}

// TestLoadCorpusMissingDir: a missing directory is an empty corpus.
func TestLoadCorpusMissingDir(t *testing.T) {
	entries, err := LoadCorpus(filepath.Join(t.TempDir(), "nope"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("missing dir: entries=%d err=%v", len(entries), err)
	}
}

// TestEntryValidateRejects: structurally broken entries are refused before
// anything replays them.
func TestEntryValidateRejects(t *testing.T) {
	good := func() *Entry {
		return &Entry{
			Version: CorpusVersion, Name: "x", K: 2, Machines: 1, Speed: 1,
			LBSlots: 64, LBMaxUnits: 4000, Ratio: 2, NormRatio: math.Sqrt2,
			RRPower: 4, LowerBound: 2,
			Jobs: []EntryJob{{ID: 0, Release: 0, Size: 1}},
		}
	}
	cases := []struct {
		name   string
		break_ func(*Entry)
		want   string
	}{
		{"bad-version", func(e *Entry) { e.Version = 99 }, "version"},
		{"empty-name", func(e *Entry) { e.Name = "" }, "name"},
		{"bad-k", func(e *Entry) { e.K = 0 }, "cell"},
		{"bad-speed", func(e *Entry) { e.Speed = -1 }, "cell"},
		{"no-jobs", func(e *Entry) { e.Jobs = nil }, "jobs"},
		{"nan-ratio", func(e *Entry) { e.Ratio = math.NaN() }, "non-finite"},
		{"invalid-instance", func(e *Entry) { e.Jobs[0].Size = math.Inf(1) }, ""},
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("baseline entry invalid: %v", err)
	}
	for _, c := range cases {
		e := good()
		c.break_(e)
		err := e.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestFromReportChampionFallback: with shrinking disabled the champion is
// committed instead.
func TestFromReportChampionFallback(t *testing.T) {
	o := smallOpts()
	o.Budget = 40
	o.ShrinkBudget = -1
	rep, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shrunk != nil {
		t.Fatal("shrinking ran despite negative budget")
	}
	e, err := FromReport(rep, "champ")
	if err != nil {
		t.Fatal(err)
	}
	if e.Origin == "shrunk" || len(e.Jobs) != rep.Champion.Instance.N() {
		t.Fatalf("entry not built from champion: %+v", e)
	}
}

// Package metrics computes the scheduling objectives studied in the paper —
// ℓk-norms of flow time and their k-th powers — together with the fairness
// and variability statistics that motivate them (variance, tails, max flow,
// stretch, Jain's index).
package metrics

import (
	"math"
	"sort"
)

// PowK returns x^k for integer k ≥ 0 using repeated multiplication, which is
// faster and slightly more accurate than math.Pow for the small k used in
// practice (the paper notes k ∈ {1, 2, 3, ∞}).
func PowK(x float64, k int) float64 {
	switch k {
	case 0:
		return 1
	case 1:
		return x
	case 2:
		return x * x
	case 3:
		return x * x * x
	}
	r := 1.0
	b := x
	for e := k; e > 0; e >>= 1 {
		if e&1 == 1 {
			r *= b
		}
		b *= b
	}
	return r
}

// RootK returns x^{1/k} for integer k ≥ 1 — the k-th root that turns a
// power-sum ratio into an ℓk-norm ratio. Negative x (used as a "no value"
// sentinel by ratio code) is passed through unchanged.
func RootK(x float64, k int) float64 {
	if x < 0 || k == 1 {
		return x
	}
	switch k {
	case 2:
		return math.Sqrt(x)
	case 3:
		return math.Cbrt(x)
	}
	return math.Pow(x, 1/float64(k))
}

// KthPowerSum returns Σ_j F_j^k, the objective the paper's analysis bounds
// directly before taking k-th roots.
func KthPowerSum(flows []float64, k int) float64 {
	var s float64
	for _, f := range flows {
		s += PowK(f, k)
	}
	return s
}

// LkNorm returns the ℓk-norm (Σ_j F_j^k)^{1/k} for k ≥ 1.
func LkNorm(flows []float64, k int) float64 {
	if len(flows) == 0 {
		return 0
	}
	if k == 1 {
		return KthPowerSum(flows, 1)
	}
	// Normalize by the max for numerical stability with large k.
	mx := Max(flows)
	if mx == 0 {
		return 0
	}
	var s float64
	for _, f := range flows {
		s += PowK(f/mx, k)
	}
	return mx * math.Pow(s, 1/float64(k))
}

// LInfNorm returns max_j F_j.
func LInfNorm(flows []float64) float64 { return Max(flows) }

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2 values).
// Minimizing the ℓ2-norm of flow time is the paper's proxy for minimizing
// both the mean and the variance of response times.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	var mx float64
	for i, x := range xs {
		if i == 0 || x > mx {
			mx = x
		}
	}
	return mx
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	var mn float64
	for i, x := range xs {
		if i == 0 || x < mn {
			mn = x
		}
	}
	return mn
}

// Percentile returns the p-th percentile (p ∈ [0,100]) using linear
// interpolation between order statistics. Input is not modified.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[n-1]
	}
	pos := p / 100 * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) ∈ (0, 1]; 1 means
// all values equal. Applied to flow times it quantifies temporal fairness:
// RR's equal sharing should push it toward 1 relative to SRPT.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var s, sq float64
	for _, x := range xs {
		s += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return s * s / (float64(len(xs)) * sq)
}

// Stretches returns F_j / p_j for each job (slowdown). flows and sizes must
// have equal length.
func Stretches(flows, sizes []float64) []float64 {
	out := make([]float64, len(flows))
	for i := range flows {
		out[i] = flows[i] / sizes[i]
	}
	return out
}

// Summary bundles the statistics reported by the experiment harness.
type Summary struct {
	N        int
	L1       float64 // total flow time
	MeanFlow float64
	L2       float64 // ℓ2-norm of flow
	L3       float64 // ℓ3-norm of flow
	MaxFlow  float64 // ℓ∞
	Stddev   float64
	P50      float64
	P95      float64
	P99      float64
	Jain     float64
}

// Summarize computes a Summary for the given flow times.
func Summarize(flows []float64) Summary {
	return Summary{
		N:        len(flows),
		L1:       LkNorm(flows, 1),
		MeanFlow: Mean(flows),
		L2:       LkNorm(flows, 2),
		L3:       LkNorm(flows, 3),
		MaxFlow:  Max(flows),
		Stddev:   Stddev(flows),
		P50:      Percentile(flows, 50),
		P95:      Percentile(flows, 95),
		P99:      Percentile(flows, 99),
		Jain:     JainIndex(flows),
	}
}

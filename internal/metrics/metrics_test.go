package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestPowK(t *testing.T) {
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{2, 0, 1}, {2, 1, 2}, {3, 2, 9}, {2, 3, 8}, {2, 10, 1024}, {1.5, 4, 5.0625},
	}
	for _, c := range cases {
		approx(t, PowK(c.x, c.k), c.want, 1e-12, "PowK")
	}
}

func TestPowKMatchesMathPow(t *testing.T) {
	if err := quick.Check(func(xRaw float64, kRaw uint8) bool {
		x := math.Abs(math.Mod(xRaw, 10))
		if math.IsNaN(x) {
			x = 1
		}
		k := int(kRaw % 8)
		want := math.Pow(x, float64(k))
		got := PowK(x, k)
		return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	flows := []float64{3, 4}
	approx(t, LkNorm(flows, 1), 7, 1e-12, "L1")
	approx(t, LkNorm(flows, 2), 5, 1e-12, "L2 (3-4-5)")
	approx(t, LInfNorm(flows), 4, 1e-12, "LInf")
	approx(t, KthPowerSum(flows, 2), 25, 1e-12, "sum of squares")
	approx(t, KthPowerSum(flows, 3), 27+64, 1e-12, "sum of cubes")
}

func TestNormsEmptyAndZero(t *testing.T) {
	approx(t, LkNorm(nil, 2), 0, 0, "empty L2")
	approx(t, LkNorm([]float64{0, 0}, 3), 0, 0, "zero L3")
}

// Lk norms are non-increasing in k and at least the max: L1 ≥ L2 ≥ L3 ≥ L∞.
func TestNormMonotonicityInK(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		flows := make([]float64, len(raw))
		for i, f := range raw {
			flows[i] = math.Abs(math.Mod(f, 1000))
			if math.IsNaN(flows[i]) {
				flows[i] = 1
			}
		}
		l1, l2, l3, li := LkNorm(flows, 1), LkNorm(flows, 2), LkNorm(flows, 3), LInfNorm(flows)
		tol := 1e-9 * (1 + l1)
		return l1 >= l2-tol && l2 >= l3-tol && l3 >= li-tol
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 4, 1e-12, "variance")
	approx(t, Stddev(xs), 2, 1e-12, "stddev")
	approx(t, Max(xs), 9, 0, "max")
	approx(t, Min(xs), 2, 0, "min")
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, Percentile(xs, 0), 1, 1e-12, "p0")
	approx(t, Percentile(xs, 50), 3, 1e-12, "p50")
	approx(t, Percentile(xs, 100), 5, 1e-12, "p100")
	approx(t, Percentile(xs, 25), 2, 1e-12, "p25")
	approx(t, Percentile(xs, 10), 1.4, 1e-12, "p10 interpolated")
	approx(t, Percentile(nil, 50), 0, 0, "empty")
	// Input must not be reordered.
	ys := []float64{5, 1, 3}
	Percentile(ys, 50)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Fatal("Percentile mutated input")
	}
}

func TestJainIndex(t *testing.T) {
	approx(t, JainIndex([]float64{1, 1, 1, 1}), 1, 1e-12, "equal → 1")
	// One job hogging: (1+0+0+0)²/(4·1) = 0.25.
	approx(t, JainIndex([]float64{1, 0, 0, 0}), 0.25, 1e-12, "max unfairness → 1/n")
	approx(t, JainIndex(nil), 1, 0, "empty")
}

func TestJainIndexRange(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, len(raw))
		for i, x := range raw {
			xs[i] = math.Abs(math.Mod(x, 100))
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		j := JainIndex(xs)
		return j > 0 && j <= 1+1e-12
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStretches(t *testing.T) {
	s := Stretches([]float64{4, 9}, []float64{2, 3})
	approx(t, s[0], 2, 1e-12, "stretch 0")
	approx(t, s[1], 3, 1e-12, "stretch 1")
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 4})
	if s.N != 2 {
		t.Fatalf("N=%d", s.N)
	}
	approx(t, s.L1, 7, 1e-12, "L1")
	approx(t, s.L2, 5, 1e-12, "L2")
	approx(t, s.MaxFlow, 4, 1e-12, "max")
	approx(t, s.MeanFlow, 3.5, 1e-12, "mean")
}

func TestLkNormLargeKStable(t *testing.T) {
	// Large magnitudes with large k must not overflow thanks to max
	// normalization.
	flows := []float64{1e8, 2e8, 3e8}
	got := LkNorm(flows, 20)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("L20 overflowed: %v", got)
	}
	if got < 3e8 || got > 3.2e8 {
		t.Fatalf("L20 = %v, want slightly above max 3e8", got)
	}
}

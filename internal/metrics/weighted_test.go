package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedKthPowerSum(t *testing.T) {
	flows := []float64{2, 3}
	weights := []float64{5, 1}
	// 5·4 + 1·9 = 29.
	approx(t, WeightedKthPowerSum(flows, weights, 2), 29, 1e-12, "weighted sum")
	// Zero/missing weights act as 1.
	approx(t, WeightedKthPowerSum(flows, []float64{0, 0}, 2), 13, 1e-12, "zero weights")
	approx(t, WeightedKthPowerSum(flows, nil, 2), 13, 1e-12, "nil weights")
}

func TestWeightedLkNorm(t *testing.T) {
	flows := []float64{3, 4}
	// Unit weights must reproduce the unweighted norm.
	approx(t, WeightedLkNorm(flows, []float64{1, 1}, 2), 5, 1e-12, "unit weights")
	// (1·9 + 4·16)^{1/2} = √73.
	approx(t, WeightedLkNorm(flows, []float64{1, 4}, 2), math.Sqrt(73), 1e-12, "weighted L2")
	approx(t, WeightedLkNorm(nil, nil, 2), 0, 0, "empty")
	approx(t, WeightedLkNorm([]float64{5, 2}, []float64{2, 3}, 1), 16, 1e-12, "weighted L1")
}

func TestWeightedMean(t *testing.T) {
	approx(t, WeightedMean([]float64{10, 2}, []float64{1, 3}), 4, 1e-12, "weighted mean")
	approx(t, WeightedMean(nil, nil), 0, 0, "empty")
}

// Weighted norms with all-unit weights must equal the unweighted norms.
func TestWeightedMatchesUnweightedProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		flows := make([]float64, len(raw))
		for i, f := range raw {
			flows[i] = math.Abs(math.Mod(f, 500))
			if math.IsNaN(flows[i]) {
				flows[i] = 1
			}
		}
		ones := make([]float64, len(flows))
		for i := range ones {
			ones[i] = 1
		}
		for _, k := range []int{1, 2, 3} {
			a := WeightedLkNorm(flows, ones, k)
			b := LkNorm(flows, k)
			if math.Abs(a-b) > 1e-9*(1+b) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

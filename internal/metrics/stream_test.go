package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestStreamNormMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	flows := make([]float64, 5000)
	for i := range flows {
		flows[i] = rng.ExpFloat64() * 100
	}
	// Adversarial orders: random, ascending (max rescales every step),
	// descending (single max), and with zeros mixed in.
	orders := map[string][]float64{
		"random": flows,
		"asc":    sorted(flows, false),
		"desc":   sorted(flows, true),
		"zeros":  append([]float64{0, 0, 0}, flows...),
	}
	for name, fs := range orders {
		s := NewStreamNorm(1, 2, 3, 16, 64)
		for _, f := range fs {
			s.Add(f)
		}
		if s.N() != len(fs) {
			t.Fatalf("%s: N=%d, want %d", name, s.N(), len(fs))
		}
		for _, k := range []int{1, 2, 3, 16, 64} {
			got, want := s.Norm(k), LkNorm(fs, k)
			if rel(got, want) > 1e-9 {
				t.Errorf("%s: Norm(%d)=%v, batch %v (rel %v)", name, k, got, want, rel(got, want))
			}
		}
		for _, k := range []int{1, 2, 3} {
			got, want := s.PowerSum(k), KthPowerSum(fs, k)
			if rel(got, want) > 1e-9 {
				t.Errorf("%s: PowerSum(%d)=%v, batch %v", name, k, got, want)
			}
		}
		if got, want := s.MaxFlow(), Max(fs); got != want {
			t.Errorf("%s: MaxFlow=%v, want %v", name, got, want)
		}
	}
}

func TestStreamNormLargeKNoOverflow(t *testing.T) {
	// Flows around 1e6 overflow (1e6)^64 hopelessly; the normalized sums
	// must not.
	s := NewStreamNorm(64)
	for _, f := range []float64{1e6, 2e6, 3e6, 2.5e6} {
		s.Add(f)
	}
	got := s.Norm(64)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("Norm(64) overflowed: %v", got)
	}
	want := LkNorm([]float64{1e6, 2e6, 3e6, 2.5e6}, 64)
	if rel(got, want) > 1e-12 {
		t.Fatalf("Norm(64)=%v, want %v", got, want)
	}
}

func TestStreamNormEdgeCases(t *testing.T) {
	s := NewStreamNorm() // default 1,2,3
	if s.Norm(2) != 0 || s.PowerSum(1) != 0 {
		t.Fatal("empty stream norms must be 0")
	}
	s.Add(0)
	if s.Norm(1) != 0 || s.MaxFlow() != 0 {
		t.Fatal("all-zero stream norms must be 0")
	}
	s.Add(5)
	if got := s.Norm(1); rel(got, 5) > 1e-15 {
		t.Fatalf("Norm(1)=%v, want 5", got)
	}
	s.Reset()
	if s.N() != 0 || s.Norm(3) != 0 {
		t.Fatal("Reset did not clear")
	}
	if ks := s.Ks(); len(ks) != 3 || ks[0] != 1 || ks[1] != 2 || ks[2] != 3 {
		t.Fatalf("default ks = %v", ks)
	}
}

func TestStreamNormPanics(t *testing.T) {
	mustPanic(t, func() { NewStreamNorm(0) })
	mustPanic(t, func() { NewStreamNorm(2).Norm(3) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func sorted(xs []float64, desc bool) []float64 {
	out := append([]float64(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j] < out[j-1]) != desc; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func rel(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

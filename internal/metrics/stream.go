package metrics

import (
	"fmt"
	"math"

	"rrnorm/internal/core"
)

// StreamNorm accumulates the k-th power sums Σ_j F_j^k — and the ℓk-norms
// they induce — online, one completion at a time, for a fixed set of k's.
// Attached as a core.Observer it replaces the LkNorm-over-Result.Flow
// post-pass without materializing anything per job: state is O(len(ks)),
// which is what lets an n=10⁶ sweep run without RecordSegments and without
// a second pass over the flows.
//
// Numerical stability matches LkNorm: sums are kept normalized by the
// running maximum flow (Σ (F_j/max)^k), rescaled when a new maximum
// arrives, so large k never overflows mid-stream. Against the batch LkNorm
// the result differs only by the rescaling roundoff — well inside the
// 1e-6 relative tolerance the differential harness checks.
//
// The zero value is not ready; use NewStreamNorm. Add and the observer
// callbacks allocate nothing, so a workspace-reuse run with a StreamNorm
// attached stays allocation-free in steady state.
type StreamNorm struct {
	ks   []int
	sums []float64 // sums[i] = Σ (f/max)^ks[i]
	max  float64
	n    int
}

// NewStreamNorm returns a StreamNorm tracking the given exponents (each
// ≥ 1; duplicates are fine). With no arguments it tracks k = 1, 2, 3 —
// the norms the paper reports. Panics on k < 1: exponents are compile-time
// decisions, not data.
func NewStreamNorm(ks ...int) *StreamNorm {
	if len(ks) == 0 {
		ks = []int{1, 2, 3}
	}
	for _, k := range ks {
		if k < 1 {
			panic(fmt.Sprintf("metrics: StreamNorm k must be ≥ 1, got %d", k))
		}
	}
	return &StreamNorm{
		ks:   append([]int(nil), ks...),
		sums: make([]float64, len(ks)),
	}
}

// Reset clears the accumulated state, keeping the exponent set.
func (s *StreamNorm) Reset() {
	for i := range s.sums {
		s.sums[i] = 0
	}
	s.max = 0
	s.n = 0
}

// Add folds one flow time into every tracked power sum.
func (s *StreamNorm) Add(flow float64) {
	s.n++
	if flow > s.max {
		if s.max > 0 {
			r := s.max / flow
			for i, k := range s.ks {
				s.sums[i] *= PowK(r, k)
			}
		}
		s.max = flow
	}
	if s.max == 0 {
		return // flow == 0 contributes nothing to any k ≥ 1 sum
	}
	x := flow / s.max
	for i, k := range s.ks {
		s.sums[i] += PowK(x, k)
	}
}

// N returns the number of flows added.
func (s *StreamNorm) N() int { return s.n }

// MaxFlow returns the running maximum flow (the ℓ∞-norm so far).
func (s *StreamNorm) MaxFlow() float64 { return s.max }

// Ks returns the tracked exponents (a copy).
func (s *StreamNorm) Ks() []int { return append([]int(nil), s.ks...) }

// idx returns the position of k in the tracked set; panics when k was not
// requested at construction — asking for an untracked norm is a programming
// error, not a data condition.
func (s *StreamNorm) idx(k int) int {
	for i, kk := range s.ks {
		if kk == k {
			return i
		}
	}
	panic(fmt.Sprintf("metrics: StreamNorm does not track k=%d (tracking %v)", k, s.ks))
}

// Norm returns the ℓk-norm (Σ F^k)^{1/k} of the flows added so far, for a
// tracked k.
func (s *StreamNorm) Norm(k int) float64 {
	i := s.idx(k)
	if s.max == 0 {
		return 0
	}
	if k == 1 {
		return s.max * s.sums[i]
	}
	return s.max * math.Pow(s.sums[i], 1/float64(k))
}

// PowerSum returns Σ F^k for a tracked k. Unlike Norm it denormalizes by
// max^k, so for large k and large flows it can overflow to +Inf — the same
// caveat as the batch KthPowerSum.
func (s *StreamNorm) PowerSum(k int) float64 {
	i := s.idx(k)
	if s.max == 0 {
		return 0
	}
	return PowK(s.max, k) * s.sums[i]
}

// ObserveArrival implements core.Observer.
func (s *StreamNorm) ObserveArrival(t float64, job int, j core.Job) {}

// ObserveEpoch implements core.Observer.
func (s *StreamNorm) ObserveEpoch(e *core.Epoch) {}

// CoarseEpochsOK implements core.CoarseEpochObserver: the norm reduces
// completions only, so bulk-advance engine paths may aggregate (or skip)
// epoch callbacks without changing a single digit of the result.
func (s *StreamNorm) CoarseEpochsOK() bool { return true }

// Merge folds another accumulator tracking the same exponent set into s —
// the reduction step for machine-sharded runs, where each shard reduces
// its own completions and the shards are merged afterwards in shard
// order. The merged state is exactly what one StreamNorm would hold had
// it seen s's flows followed by o's (both rescaled to the common maximum),
// so folding shards in a fixed order is deterministic: same shards, same
// order, same bits — regardless of how many workers ran them. o is not
// modified. Panics when the exponent sets differ: merging mismatched
// accumulators is a programming error.
func (s *StreamNorm) Merge(o *StreamNorm) {
	if len(s.ks) != len(o.ks) {
		panic(fmt.Sprintf("metrics: Merge of StreamNorms with different exponents %v vs %v", s.ks, o.ks))
	}
	for i := range s.ks {
		if s.ks[i] != o.ks[i] {
			panic(fmt.Sprintf("metrics: Merge of StreamNorms with different exponents %v vs %v", s.ks, o.ks))
		}
	}
	s.n += o.n
	if o.max == 0 {
		return // nothing but zero flows on the other side
	}
	if o.max > s.max {
		// Rescale s's sums to o's (larger) maximum, mirroring Add.
		if s.max > 0 {
			r := s.max / o.max
			for i, k := range s.ks {
				s.sums[i] *= PowK(r, k)
			}
		}
		s.max = o.max
		for i := range s.sums {
			s.sums[i] += o.sums[i]
		}
		return
	}
	r := o.max / s.max
	for i, k := range s.ks {
		s.sums[i] += o.sums[i] * PowK(r, k)
	}
}

// ObserveCompletion implements core.Observer: each completion's flow time
// is folded into the power sums.
func (s *StreamNorm) ObserveCompletion(t float64, job int, flow float64) {
	s.Add(flow)
}

// ObserveDone implements core.Observer.
func (s *StreamNorm) ObserveDone(res *core.Result) {}

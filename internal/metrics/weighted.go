package metrics

import "math"

// WeightedKthPowerSum returns Σ_j w_j·F_j^k — the weighted k-th power flow
// objective from the dual-fitting literature the paper builds on. flows and
// weights must have equal length; a zero weight means 1 (matching
// core.Job.W).
func WeightedKthPowerSum(flows, weights []float64, k int) float64 {
	var s float64
	for i, f := range flows {
		s += effWeight(weights, i) * PowK(f, k)
	}
	return s
}

// WeightedLkNorm returns (Σ_j w_j F_j^k)^{1/k} for k ≥ 1.
func WeightedLkNorm(flows, weights []float64, k int) float64 {
	if len(flows) == 0 {
		return 0
	}
	if k == 1 {
		return WeightedKthPowerSum(flows, weights, 1)
	}
	mx := Max(flows)
	if mx == 0 {
		return 0
	}
	var s float64
	for i, f := range flows {
		s += effWeight(weights, i) * PowK(f/mx, k)
	}
	return mx * math.Pow(s, 1/float64(k))
}

// WeightedMean returns Σ w_j F_j / Σ w_j.
func WeightedMean(flows, weights []float64) float64 {
	if len(flows) == 0 {
		return 0
	}
	var num, den float64
	for i, f := range flows {
		w := effWeight(weights, i)
		num += w * f
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// effWeight reads weights[i] with the zero-means-one convention; a nil or
// short weights slice means all ones.
func effWeight(weights []float64, i int) float64 {
	if i >= len(weights) || weights[i] == 0 {
		return 1
	}
	return weights[i]
}

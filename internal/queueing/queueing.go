// Package queueing provides closed-form queueing-theory references used to
// validate the simulator on stochastic inputs: M/M/1 and M/G/1 formulas for
// FCFS and processor sharing (PS — what Round Robin simulates exactly), and
// the M/G/1-SRPT mean response time via numerical integration of
// Schrage–Miller. These are oracles for integration tests and for the mm1
// example; the competitive analysis itself never relies on them.
package queueing

import (
	"errors"
	"fmt"
)

// ErrUnstable is returned when the offered load is ≥ 1.
var ErrUnstable = errors.New("queueing: load must be < 1")

// MM1 describes an M/M/1 queue with arrival rate Lambda and service rate
// Mu (mean size 1/Mu).
type MM1 struct {
	Lambda, Mu float64
}

// Load returns ρ = λ/μ.
func (q MM1) Load() float64 { return q.Lambda / q.Mu }

// check validates stability.
func (q MM1) check() error {
	if !(q.Lambda > 0) || !(q.Mu > 0) {
		return fmt.Errorf("queueing: rates must be positive (λ=%v, μ=%v)", q.Lambda, q.Mu)
	}
	if q.Load() >= 1 {
		return fmt.Errorf("%w: ρ=%v", ErrUnstable, q.Load())
	}
	return nil
}

// MeanSojournFCFS returns E[T] = 1/(μ−λ) for M/M/1 under FCFS.
func (q MM1) MeanSojournFCFS() (float64, error) {
	if err := q.check(); err != nil {
		return 0, err
	}
	return 1 / (q.Mu - q.Lambda), nil
}

// MeanSojournPS returns E[T] = (1/μ)/(1−ρ) for M/M/1 under processor
// sharing (equal to FCFS for exponential service — a coincidence of M/M/1).
func (q MM1) MeanSojournPS() (float64, error) {
	if err := q.check(); err != nil {
		return 0, err
	}
	return (1 / q.Mu) / (1 - q.Load()), nil
}

// MeanNumberInSystem returns E[L] = ρ/(1−ρ) (Little's law × MeanSojourn).
func (q MM1) MeanNumberInSystem() (float64, error) {
	if err := q.check(); err != nil {
		return 0, err
	}
	rho := q.Load()
	return rho / (1 - rho), nil
}

// MG1 describes an M/G/1 queue via the arrival rate and the first two
// moments of the service distribution.
type MG1 struct {
	Lambda float64
	ES     float64 // E[S]
	ES2    float64 // E[S²]
}

// Load returns ρ = λ·E[S].
func (q MG1) Load() float64 { return q.Lambda * q.ES }

func (q MG1) check() error {
	if !(q.Lambda > 0) || !(q.ES > 0) || !(q.ES2 > 0) {
		return fmt.Errorf("queueing: bad M/G/1 parameters %+v", q)
	}
	if q.Load() >= 1 {
		return fmt.Errorf("%w: ρ=%v", ErrUnstable, q.Load())
	}
	return nil
}

// MeanWaitFCFS returns the Pollaczek–Khinchine mean waiting time
// W = λ·E[S²] / (2(1−ρ)); mean sojourn is W + E[S].
func (q MG1) MeanWaitFCFS() (float64, error) {
	if err := q.check(); err != nil {
		return 0, err
	}
	return q.Lambda * q.ES2 / (2 * (1 - q.Load())), nil
}

// MeanSojournFCFS returns E[T] = E[S] + W under FCFS.
func (q MG1) MeanSojournFCFS() (float64, error) {
	w, err := q.MeanWaitFCFS()
	if err != nil {
		return 0, err
	}
	return q.ES + w, nil
}

// MeanSojournPS returns E[T] = E[S]/(1−ρ): processor sharing is
// insensitive to the service distribution beyond its mean.
func (q MG1) MeanSojournPS() (float64, error) {
	if err := q.check(); err != nil {
		return 0, err
	}
	return q.ES / (1 - q.Load()), nil
}

// SRPTQueue computes M/G/1-SRPT mean response time from the service
// density on a bounded support via the Schrage–Miller formulas, integrated
// numerically with Simpson's rule.
type SRPTQueue struct {
	Lambda float64
	// Density is the service-time pdf f(x) on [0, Sup].
	Density func(x float64) float64
	Sup     float64
	// Steps is the integration resolution (default 2000).
	Steps int
}

// MeanSojournSRPT returns E[T] for M/G/1 under SRPT:
//
//	E[T] = ∫ f(x) · T(x) dx, with
//	T(x) = ∫_0^x dt/(1−ρ(t))  +  (λ/2)·(∫_0^x t² f(t) dt + x²·F̄(x)) / (1−ρ(x))²,
//
// where ρ(t) = λ∫_0^t u f(u) du is the load from jobs of size ≤ t (with the
// partial contribution of size-x jobs) and F̄ the tail. (Schrage & Miller
// 1966; the first term is the residence time, the second the waiting time.)
func (q SRPTQueue) MeanSojournSRPT() (float64, error) {
	if !(q.Lambda > 0) || q.Density == nil || !(q.Sup > 0) {
		return 0, fmt.Errorf("queueing: bad SRPT parameters")
	}
	steps := q.Steps
	if steps <= 0 {
		steps = 2000
	}
	h := q.Sup / float64(steps)
	// Precompute cumulative ρ(t) and ∫ t² f(t) dt on the grid.
	rho := make([]float64, steps+1)
	m2 := make([]float64, steps+1)
	cdf := make([]float64, steps+1)
	for i := 1; i <= steps; i++ {
		a := float64(i-1) * h
		b := float64(i) * h
		mid := (a + b) / 2
		fa, fm, fb := q.Density(a), q.Density(mid), q.Density(b)
		// Simpson per cell for ∫ f, ∫ t f, ∫ t² f.
		cdf[i] = cdf[i-1] + h/6*(fa+4*fm+fb)
		rho[i] = rho[i-1] + q.Lambda*h/6*(a*fa+4*mid*fm+b*fb)
		m2[i] = m2[i-1] + h/6*(a*a*fa+4*mid*mid*fm+b*b*fb)
	}
	if rho[steps] >= 1 {
		return 0, fmt.Errorf("%w: ρ=%v", ErrUnstable, rho[steps])
	}
	// T(x) on the grid, then E[T] = ∫ f(x) T(x) dx by trapezoid.
	var et float64
	resid := 0.0
	for i := 1; i <= steps; i++ {
		x := float64(i) * h
		// Residence: ∫_0^x dt/(1−ρ(t)), trapezoid increment.
		resid += h / 2 * (1/(1-rho[i-1]) + 1/(1-rho[i]))
		tail := 1 - cdf[i]
		if tail < 0 {
			tail = 0
		}
		wait := q.Lambda / 2 * (m2[i] + x*x*tail) / ((1 - rho[i]) * (1 - rho[i]))
		tx := resid + wait
		// Trapezoid over f(x)·T(x) using this grid point.
		w := h
		if i == steps {
			w = h / 2
		}
		et += q.Density(x) * tx * w
	}
	return et, nil
}

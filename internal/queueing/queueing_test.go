package queueing

import (
	"errors"
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestMM1ClosedForms(t *testing.T) {
	q := MM1{Lambda: 0.8, Mu: 1}
	approx(t, q.Load(), 0.8, 1e-12, "load")
	fcfs, err := q.MeanSojournFCFS()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, fcfs, 5, 1e-12, "FCFS E[T]")
	ps, err := q.MeanSojournPS()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ps, 5, 1e-12, "PS E[T]")
	l, err := q.MeanNumberInSystem()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, l, 4, 1e-12, "E[L]")
}

func TestStabilityErrors(t *testing.T) {
	if _, err := (MM1{Lambda: 1, Mu: 1}).MeanSojournFCFS(); !errors.Is(err, ErrUnstable) {
		t.Fatalf("want ErrUnstable: %v", err)
	}
	if _, err := (MM1{Lambda: -1, Mu: 1}).MeanSojournPS(); err == nil {
		t.Fatal("negative rate should fail")
	}
	if _, err := (MG1{Lambda: 2, ES: 1, ES2: 2}).MeanWaitFCFS(); !errors.Is(err, ErrUnstable) {
		t.Fatalf("want ErrUnstable: %v", err)
	}
}

func TestMG1ReducesToMM1(t *testing.T) {
	// Exponential service with mean 1: E[S²] = 2. P-K must give the M/M/1
	// values.
	q := MG1{Lambda: 0.8, ES: 1, ES2: 2}
	s, err := q.MeanSojournFCFS()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s, 5, 1e-12, "M/G/1 with exp service = M/M/1")
	ps, err := q.MeanSojournPS()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ps, 5, 1e-12, "PS insensitivity")
}

func TestMG1DeterministicService(t *testing.T) {
	// M/D/1: E[S²] = E[S]² = 1 → W = λ/(2(1−ρ)) = half the M/M/1 wait.
	q := MG1{Lambda: 0.8, ES: 1, ES2: 1}
	w, err := q.MeanWaitFCFS()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, w, 2, 1e-12, "M/D/1 wait")
}

// TestPKAgainstSimulatedFCFS validates Pollaczek–Khinchine against the
// engine with uniform service times.
func TestPKAgainstSimulatedFCFS(t *testing.T) {
	if testing.Short() {
		t.Skip("stochastic validation")
	}
	// Uniform[0.5, 1.5]: E[S] = 1, E[S²] = 1 + 1/12.
	const load = 0.75
	in := workload.PoissonLoad(stats.NewRNG(201), 50000, 1, load, workload.UniformSizes{Lo: 0.5, Hi: 1.5})
	res, err := core.Run(in, policy.NewFCFS(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := MG1{Lambda: load, ES: 1, ES2: 1 + 1.0/12}
	want, err := q.MeanSojournFCFS()
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.Mean(res.Flow)
	if math.Abs(got-want) > 0.08*want {
		t.Fatalf("P-K: simulated %v, theory %v", got, want)
	}
}

// TestSRPTMeanSojournExp validates the Schrage–Miller integration against a
// simulated M/M/1-SRPT queue.
func TestSRPTMeanSojournExp(t *testing.T) {
	if testing.Short() {
		t.Skip("stochastic validation")
	}
	const load = 0.8
	q := SRPTQueue{
		Lambda:  load,
		Density: func(x float64) float64 { return math.Exp(-x) },
		Sup:     30,
		Steps:   6000,
	}
	want, err := q.MeanSojournSRPT()
	if err != nil {
		t.Fatal(err)
	}
	in := workload.PoissonLoad(stats.NewRNG(202), 60000, 1, load, workload.ExpSizes{M: 1})
	res, err := core.Run(in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := metrics.Mean(res.Flow)
	if math.Abs(got-want) > 0.10*want {
		t.Fatalf("SRPT mean sojourn: simulated %v, Schrage–Miller %v", got, want)
	}
	// SRPT must beat PS/FCFS in the mean.
	ps, _ := MM1{Lambda: load, Mu: 1}.MeanSojournPS()
	if !(want < ps) {
		t.Fatalf("SRPT theory %v should beat PS %v", want, ps)
	}
}

func TestSRPTQueueErrors(t *testing.T) {
	if _, err := (SRPTQueue{}).MeanSojournSRPT(); err == nil {
		t.Fatal("empty queue should fail")
	}
	over := SRPTQueue{Lambda: 2, Density: func(x float64) float64 { return math.Exp(-x) }, Sup: 30}
	if _, err := over.MeanSojournSRPT(); !errors.Is(err, ErrUnstable) {
		t.Fatalf("want ErrUnstable: %v", err)
	}
}

// Package par provides the small deterministic parallelism utilities used
// by the experiment harness and the serving layer: bounded-concurrency
// parallel map over index ranges with first-error propagation and optional
// cooperative cancellation. Results are collected by index, so parallel
// execution never changes outputs — a hard requirement for the
// reproducibility guarantees of rrbench tables and rrserve responses.
package par

import (
	"context"
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers ≤ 0 → GOMAXPROCS) and returns the first error encountered (by
// lowest index). All iterations run even after an error, keeping the cost
// bounded and the behavior deterministic.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// canceled no new iterations are scheduled; iterations already running are
// handed ctx so they can return promptly (the simulation engines poll
// Options.Context). When cancellation prevented any iteration from being
// scheduled the return value is ctx.Err(); otherwise it is the first
// iteration error by lowest index, preserving ForEach's determinism. A nil
// ctx means never canceled.
func ForEachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	return ForEachWorkerCtx(ctx, n, workers, func(ctx context.Context, _, i int) error {
		return fn(ctx, i)
	})
}

// WorkerCount resolves the effective worker count the dispatchers use for n
// iterations: workers ≤ 0 means GOMAXPROCS, and the count never exceeds n
// (nor drops below 1). Exported so callers that keep per-worker state
// (batch simulation workspaces) size their arrays exactly the way
// ForEachWorkerCtx will index them.
func WorkerCount(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEachWorkerCtx is ForEachCtx with the executing worker's index
// w ∈ [0, WorkerCount(n, workers)) passed to each iteration — the hook for
// callers that keep per-worker reusable state (e.g. simulation workspaces)
// without any locking: a worker runs its iterations sequentially, so state
// indexed by w is never shared. Iterations are pulled off a shared counter
// (work stealing by another name), so one slow iteration never stalls the
// rest of the grid.
func ForEachWorkerCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = WorkerCount(n, workers)
	errs := make([]error, n)
	var (
		next    int
		skipped bool
		mu      sync.Mutex
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				if ctx.Err() != nil && next < n {
					skipped = true
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = fn(ctx, w, i)
			}
		}(w)
	}
	wg.Wait()
	if skipped {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to each index and collects results in order; on error the
// first (lowest-index) error is returned along with the partial results.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with ForEachCtx's cancellation semantics; indices skipped
// because of cancellation are left at T's zero value in the partial
// results.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

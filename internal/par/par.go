// Package par provides the small deterministic parallelism utilities used
// by the experiment harness: bounded-concurrency parallel map over index
// ranges with first-error propagation. Results are collected by index, so
// parallel execution never changes outputs — a hard requirement for the
// reproducibility guarantees of rrbench tables.
package par

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for i in [0, n) on up to workers goroutines
// (workers ≤ 0 → GOMAXPROCS) and returns the first error encountered (by
// lowest index). All iterations run even after an error, keeping the cost
// bounded and the behavior deterministic.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map applies fn to each index and collects results in order; on error the
// first (lowest-index) error is returned along with the partial results.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

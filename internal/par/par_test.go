package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	err := ForEach(100, 8, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d ran %d times", i, s)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3 := errors.New("three")
	e7 := errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 7:
			return e7
		case 3:
			return e3
		}
		return nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestForEachEmptyAndDefaults(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := int64(0)
	if err := ForEach(5, 0, func(int) error { atomic.AddInt64(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran %d", ran)
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicUnderConcurrency(t *testing.T) {
	f := func(i int) (float64, error) { return float64(i) * 1.5, nil }
	a, _ := Map(200, 1, f)
	b, _ := Map(200, 16, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallelism changed results at %d", i)
		}
	}
}

func TestForEachCtxStopsSchedulingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEachCtx(ctx, 1000, 2, func(_ context.Context, i int) error {
			atomic.AddInt64(&started, 1)
			<-release
			return nil
		})
	}()
	// Wait for both workers to be inside an iteration, cancel, then free
	// them: no further iterations may be scheduled.
	for atomic.LoadInt64(&started) < 2 {
		runtime.Gosched()
	}
	cancel()
	close(release)
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := atomic.LoadInt64(&started); n > 4 {
		t.Fatalf("scheduled %d iterations after cancellation (want ≤ workers in flight)", n)
	}
}

func TestForEachCtxCompletedRunKeepsIterationError(t *testing.T) {
	eBad := errors.New("bad")
	err := ForEachCtx(context.Background(), 50, 8, func(_ context.Context, i int) error {
		if i == 11 {
			return eBad
		}
		return nil
	})
	if !errors.Is(err, eBad) {
		t.Fatalf("want iteration error, got %v", err)
	}
}

func TestForEachCtxNilContext(t *testing.T) {
	var ran int64
	if err := ForEachCtx(nil, 10, 4, func(ctx context.Context, _ int) error {
		if ctx == nil {
			t.Error("fn received nil ctx")
		}
		atomic.AddInt64(&ran, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 10 {
		t.Fatalf("ran %d of 10", ran)
	}
}

func TestForEachCtxCancelReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := ForEachCtx(ctx, 10000, 4, func(ctx context.Context, i int) error {
		select { // a ctx-honoring body, as the simulation engines are
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
			return nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled ForEachCtx took %v", d)
	}
}

func TestMapCtxPartialOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before any scheduling
	out, err := MapCtx(ctx, 8, 4, func(_ context.Context, i int) (int, error) { return i + 1, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(out) != 8 {
		t.Fatalf("want zero-valued partials of len 8, got %d", len(out))
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{10, 4, 4},
		{3, 8, 3},   // capped at n
		{10, 0, runtime.GOMAXPROCS(0)},
		{10, -1, runtime.GOMAXPROCS(0)},
		{0, 4, 1},   // never below 1
	}
	for _, c := range cases {
		if got := WorkerCount(c.n, c.workers); got != c.want {
			t.Errorf("WorkerCount(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestForEachWorkerCtxWorkerIDs pins the per-worker-state contract the
// batch layer builds on: every worker index is in [0, WorkerCount), every
// iteration runs exactly once, and iterations sharing a worker index never
// overlap in time (so unsynchronized per-worker state is safe).
func TestForEachWorkerCtxWorkerIDs(t *testing.T) {
	const n, workers = 200, 5
	want := WorkerCount(n, workers)
	var ran [n]int64
	var busy [workers]int64
	err := ForEachWorkerCtx(context.Background(), n, workers, func(_ context.Context, w, i int) error {
		if w < 0 || w >= want {
			t.Errorf("iteration %d: worker %d out of [0, %d)", i, w, want)
		}
		if atomic.AddInt64(&busy[w], 1) != 1 {
			t.Errorf("worker %d entered concurrently", w)
		}
		time.Sleep(time.Microsecond)
		atomic.AddInt64(&busy[w], -1)
		atomic.AddInt64(&ran[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if ran[i] != 1 {
			t.Fatalf("index %d ran %d times", i, ran[i])
		}
	}
}

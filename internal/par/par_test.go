package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	var count int64
	seen := make([]int64, 100)
	err := ForEach(100, 8, func(i int) error {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("ran %d of 100", count)
	}
	for i, s := range seen {
		if s != 1 {
			t.Fatalf("index %d ran %d times", i, s)
		}
	}
}

func TestForEachFirstErrorByIndex(t *testing.T) {
	e3 := errors.New("three")
	e7 := errors.New("seven")
	err := ForEach(10, 4, func(i int) error {
		switch i {
		case 7:
			return e7
		case 3:
			return e3
		}
		return nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("want lowest-index error, got %v", err)
	}
}

func TestForEachEmptyAndDefaults(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := int64(0)
	if err := ForEach(5, 0, func(int) error { atomic.AddInt64(&ran, 1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran != 5 {
		t.Fatalf("ran %d", ran)
	}
}

func TestMapOrdered(t *testing.T) {
	out, err := Map(20, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapDeterministicUnderConcurrency(t *testing.T) {
	f := func(i int) (float64, error) { return float64(i) * 1.5, nil }
	a, _ := Map(200, 1, f)
	b, _ := Map(200, 16, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallelism changed results at %d", i)
		}
	}
}

// Package quantum implements the operating-systems Round Robin that the
// paper's fluid RR idealizes: a single ready queue served in time quanta of
// length Q, with an optional context-switch overhead c paid whenever the
// CPU switches between different jobs. As Q → 0 with c = 0 the schedule
// converges to the paper's processor-sharing RR; with c > 0 the overhead
// puts a floor on useful quanta — the classic OS tradeoff (Silberschatz et
// al., the textbook the paper quotes for its motivation).
//
// Only the single-machine case is modeled: the point of the package is the
// fluid-vs-discrete comparison (experiment E17), not another scheduler.
package quantum

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rrnorm/internal/core"
)

// Options configures a discrete Round Robin run.
type Options struct {
	// Quantum is the time slice Q > 0.
	Quantum float64
	// SwitchCost is the overhead c ≥ 0 paid before running a quantum of a
	// job different from the previous one.
	SwitchCost float64
	// Speed is the resource-augmentation factor (applies to job progress,
	// not to the overhead — a faster CPU still pays the same scheduling
	// path length in time c).
	Speed float64
	// MaxEvents bounds the number of quanta simulated.
	MaxEvents int
}

// Result mirrors core.Result for the discrete schedule.
type Result struct {
	Jobs       []core.Job
	Completion []float64
	Flow       []float64
	// Switches counts context switches; Overhead is the total time spent
	// switching.
	Switches int
	Overhead float64
}

// Errors.
var (
	ErrBadOptions = errors.New("quantum: invalid options")
	ErrOverrun    = errors.New("quantum: event budget exhausted")
)

// Run simulates discrete Round Robin: jobs enter a FIFO ready queue on
// arrival; the head runs for min(Q, remaining); an unfinished job re-enters
// the tail. Arrivals during a quantum join the queue at the instant the
// quantum ends (textbook semantics).
func Run(in *core.Instance, opts Options) (*Result, error) {
	if !(opts.Quantum > 0) || opts.SwitchCost < 0 || !(opts.Speed > 0) {
		return nil, fmt.Errorf("%w: %+v", ErrBadOptions, opts)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()
	jobs := inst.Jobs
	n := len(jobs)
	maxEvents := opts.MaxEvents
	if maxEvents == 0 {
		maxEvents = 10_000_000
	}
	res := &Result{Jobs: jobs, Completion: make([]float64, n), Flow: make([]float64, n)}
	if n == 0 {
		return res, nil
	}
	rem := make([]float64, n)
	for i, j := range jobs {
		rem[i] = j.Size
	}
	var queue []int
	next := 0
	now := jobs[0].Release
	last := -1 // job that ran the previous quantum
	events := 0
	admit := func(t float64) {
		for next < n && jobs[next].Release <= t {
			queue = append(queue, next)
			next++
		}
	}
	admit(now)
	for len(queue) > 0 || next < n {
		events++
		if events > maxEvents {
			return nil, fmt.Errorf("%w (%d quanta)", ErrOverrun, events)
		}
		if len(queue) == 0 {
			now = jobs[next].Release
			admit(now)
			continue
		}
		cur := queue[0]
		queue = queue[1:]
		if cur != last && opts.SwitchCost > 0 {
			now += opts.SwitchCost
			res.Switches++
			res.Overhead += opts.SwitchCost
		}
		last = cur
		slice := math.Min(opts.Quantum, rem[cur]/opts.Speed)
		now += slice
		rem[cur] -= slice * opts.Speed
		if rem[cur] <= 1e-12*(1+jobs[cur].Size) {
			res.Completion[cur] = now
			res.Flow[cur] = now - jobs[cur].Release
			admit(now)
			continue
		}
		// Arrivals during the quantum enter ahead of the preempted job.
		admit(now)
		queue = append(queue, cur)
	}
	return res, nil
}

// FluidGap quantifies the distance between a discrete-RR schedule and the
// fluid processor-sharing RR on the same instance: the maximum and mean
// absolute per-job completion-time difference.
func FluidGap(discrete *Result, fluid *core.Result) (maxGap, meanGap float64, err error) {
	if len(discrete.Jobs) != len(fluid.Jobs) {
		return 0, 0, fmt.Errorf("quantum: mismatched instances")
	}
	// Both are in normalized order; match by ID to be safe.
	pos := map[int]int{}
	for i, j := range fluid.Jobs {
		pos[j.ID] = i
	}
	var sum float64
	for i, j := range discrete.Jobs {
		fi, ok := pos[j.ID]
		if !ok {
			return 0, 0, fmt.Errorf("quantum: job %d missing from fluid result", j.ID)
		}
		d := math.Abs(discrete.Completion[i] - fluid.Completion[fi])
		sum += d
		if d > maxGap {
			maxGap = d
		}
	}
	meanGap = sum / float64(len(discrete.Jobs))
	return maxGap, meanGap, nil
}

// EffectiveThroughput returns the fraction of wall time spent on useful
// work: (makespan − overhead) / makespan over the busy schedule.
func (r *Result) EffectiveThroughput() float64 {
	var makespan float64
	for _, c := range r.Completion {
		if c > makespan {
			makespan = c
		}
	}
	if makespan <= 0 {
		return 1
	}
	return 1 - r.Overhead/makespan
}

// Makespan returns the last completion time.
func (r *Result) Makespan() float64 {
	var m float64
	for _, c := range r.Completion {
		if c > m {
			m = c
		}
	}
	return m
}

// SortedFlows returns a sorted copy of the flows (for distribution
// comparisons).
func (r *Result) SortedFlows() []float64 {
	out := append([]float64(nil), r.Flow...)
	sort.Float64s(out)
	return out
}

package quantum

import (
	"errors"
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestSingleJob(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 1, Size: 3}})
	res, err := Run(in, Options{Quantum: 0.5, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Completion[0], 4, 1e-9, "completion")
	if res.Switches != 0 {
		t.Fatalf("switches %d (no overhead configured)", res.Switches)
	}
}

func TestTextbookInterleaving(t *testing.T) {
	// Two size-2 jobs at 0, quantum 1: A[0,1] B[1,2] A[2,3] B[3,4].
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 0, Size: 2}})
	res, err := Run(in, Options{Quantum: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Completion[0], 3, 1e-9, "A completes after its 2nd quantum")
	approx(t, res.Completion[1], 4, 1e-9, "B completes last")
}

func TestSwitchCostCounted(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 0, Size: 2}})
	res, err := Run(in, Options{Quantum: 1, SwitchCost: 0.1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Switches: →A, →B, →A, →B = 4 (first dispatch also pays).
	if res.Switches != 4 {
		t.Fatalf("switches %d, want 4", res.Switches)
	}
	approx(t, res.Overhead, 0.4, 1e-12, "overhead")
	approx(t, res.Completion[1], 4.4, 1e-9, "B pushed by overhead")
	if tp := res.EffectiveThroughput(); math.Abs(tp-(1-0.4/4.4)) > 1e-9 {
		t.Fatalf("throughput %v", tp)
	}
}

func TestNoSwitchCostWithinSameJob(t *testing.T) {
	// A single job across many quanta never switches.
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 5}})
	res, err := Run(in, Options{Quantum: 0.25, SwitchCost: 0.5, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 1 { // only the initial dispatch
		t.Fatalf("switches %d, want 1", res.Switches)
	}
	approx(t, res.Completion[0], 5.5, 1e-9, "completion with one dispatch")
}

// TestConvergesToFluidRR: as Q → 0 (no overhead), discrete RR's completions
// converge to the paper's processor-sharing RR.
func TestConvergesToFluidRR(t *testing.T) {
	in := workload.Poisson(stats.NewRNG(3), 40, 1, workload.ExpSizes{M: 1})
	fluid, err := core.Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var prevMax float64 = math.Inf(1)
	for _, q := range []float64{0.5, 0.1, 0.02} {
		res, err := Run(in, Options{Quantum: q, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		maxGap, meanGap, err := FluidGap(res, fluid)
		if err != nil {
			t.Fatal(err)
		}
		if meanGap > maxGap {
			t.Fatal("mean above max")
		}
		if maxGap > prevMax*1.2 {
			t.Fatalf("gap did not shrink: Q=%v gap %v (prev %v)", q, maxGap, prevMax)
		}
		prevMax = maxGap
	}
	// At Q = 0.02 the schedules should agree to within a few quanta.
	res, _ := Run(in, Options{Quantum: 0.02, Speed: 1})
	maxGap, _, _ := FluidGap(res, fluid)
	if maxGap > 1.0 {
		t.Fatalf("Q=0.02: max completion gap %v too large", maxGap)
	}
}

// TestOverheadDegradesWithSmallQuanta: with a fixed switch cost, the total
// flow gets strictly worse as the quantum shrinks (the OS tradeoff).
func TestOverheadDegradesWithSmallQuanta(t *testing.T) {
	in := workload.Batch(stats.NewRNG(4), 10, workload.UniformSizes{Lo: 1, Hi: 3})
	var prev float64
	for i, q := range []float64{2, 0.5, 0.1} {
		res, err := Run(in, Options{Quantum: q, SwitchCost: 0.05, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		l1 := metrics.LkNorm(res.Flow, 1)
		if i > 0 && l1 <= prev {
			t.Fatalf("smaller quantum with overhead should cost more: Q=%v L1=%v (prev %v)", q, l1, prev)
		}
		prev = l1
	}
}

func TestRunErrors(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}})
	if _, err := Run(in, Options{Quantum: 0, Speed: 1}); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("want ErrBadOptions: %v", err)
	}
	if _, err := Run(in, Options{Quantum: 1, Speed: 1, MaxEvents: 0}); err != nil {
		t.Fatalf("default MaxEvents should work: %v", err)
	}
	tiny := Options{Quantum: 1e-7, Speed: 1, MaxEvents: 100}
	big := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1e3}})
	if _, err := Run(big, tiny); !errors.Is(err, ErrOverrun) {
		t.Fatalf("want ErrOverrun: %v", err)
	}
}

func TestEmptyInstance(t *testing.T) {
	res, err := Run(core.NewInstance(nil), Options{Quantum: 1, Speed: 1})
	if err != nil || len(res.Flow) != 0 {
		t.Fatalf("empty: %v %v", res, err)
	}
}

func TestSortedFlows(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 3}, {ID: 1, Release: 0, Size: 1}})
	res, err := Run(in, Options{Quantum: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fs := res.SortedFlows()
	if fs[0] > fs[1] {
		t.Fatal("not sorted")
	}
}

package round

import (
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/opt"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func TestScheduleBasic(t *testing.T) {
	in := workload.Poisson(stats.NewRNG(1), 20, 1, workload.UniformSizes{Lo: 0.5, Hi: 2})
	r, err := Schedule(in, 1, 2, Options{LP: lp.Options{Slots: 200, MaxUnits: 30000}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Alpha <= 0 || r.Power <= 0 {
		t.Fatalf("result: %+v", r)
	}
	// Feasible schedule ⇒ its power is at least the certified bound.
	if r.Power < r.Bound.Value*(1-1e-9) {
		t.Fatalf("rounded power %v below LP bound %v — impossible", r.Power, r.Bound.Value)
	}
}

func TestScheduleEmpty(t *testing.T) {
	r, err := Schedule(core.NewInstance(nil), 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Res.Flow) != 0 {
		t.Fatalf("empty: %+v", r)
	}
}

// TestRoundedNearOptimal: on tiny instances the α-point schedule must be
// within a small constant of the exact optimum (and never below it).
func TestRoundedNearOptimal(t *testing.T) {
	rng := stats.NewRNG(7)
	for trial := 0; trial < 10; trial++ {
		n := 3 + int(rng.Uint64()%3)
		in := workload.Poisson(rng, n, 1, workload.UniformSizes{Lo: 0.5, Hi: 2})
		for _, k := range []int{1, 2} {
			exact, err := opt.Exact(in, k, opt.Options{})
			if err != nil {
				t.Fatal(err)
			}
			r, err := Schedule(in, 1, k, Options{LP: lp.Options{Slots: 300}})
			if err != nil {
				t.Fatal(err)
			}
			if r.Power < exact.Cost*(1-1e-7) {
				t.Fatalf("trial %d k=%d: rounded %v below OPT %v", trial, k, r.Power, exact.Cost)
			}
			if r.Power > exact.Cost*3 {
				t.Fatalf("trial %d k=%d: rounded %v more than 3× OPT %v", trial, k, r.Power, exact.Cost)
			}
		}
	}
}

// TestRoundedCompetitiveWithPolicies: on medium instances the rounded
// schedule should be in the same league as the best online policy (it sees
// the LP's global plan), and its use as an OPT upper estimate requires
// nothing more than feasibility — which core.Run already guarantees.
func TestRoundedCompetitiveWithPolicies(t *testing.T) {
	in := workload.PoissonLoad(stats.NewRNG(9), 60, 1, 0.9, workload.ExpSizes{M: 1})
	const k = 2
	r, err := Schedule(in, 1, k, Options{LP: lp.Options{Slots: 300, MaxUnits: 40000}})
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i, name := range []string{"SRPT", "SJF", "RR"} {
		p, _ := policy.New(name)
		res, err := core.Run(in, p, core.Options{Machines: 1, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		v := metrics.KthPowerSum(res.Flow, k)
		if i == 0 || v < best {
			best = v
		}
	}
	if r.Power > best*2 {
		t.Fatalf("rounded %v more than 2× best policy %v", r.Power, best)
	}
}

func TestStaticPriorityOrdering(t *testing.T) {
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	})
	// Give job 1 the better priority: it must finish first.
	p := policy.NewStaticPriority(map[int]float64{0: 5, 1: 1})
	res, err := core.Run(in, p, core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Completion[1] < res.Completion[0]) {
		t.Fatalf("priority ignored: %v", res.Completion)
	}
	// Unlisted jobs run last.
	p2 := policy.NewStaticPriority(map[int]float64{1: 1})
	res2, err := core.Run(in, p2, core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !(res2.Completion[1] < res2.Completion[0]) {
		t.Fatalf("unlisted job should run last: %v", res2.Completion)
	}
}

func TestLPSolutionExposed(t *testing.T) {
	in := workload.Staircase(5)
	b, err := lp.KPowerLowerBound(in, 1, 2, lp.Options{Slots: 100, WantSolution: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Solution) == 0 || b.SlotWidth <= 0 {
		t.Fatalf("no solution returned: %+v", b)
	}
	// Per-job assigned work must be within one unit of the job size.
	totals := make([]float64, in.N())
	for _, a := range b.Solution {
		if a.Work <= 0 {
			t.Fatalf("non-positive assignment %+v", a)
		}
		totals[a.Job] += a.Work
	}
	for i, j := range in.Jobs {
		if d := j.Size - totals[i]; d < 0 || d > j.Size*0.01+1 {
			t.Fatalf("job %d assigned %v of %v", j.ID, totals[i], j.Size)
		}
	}
}

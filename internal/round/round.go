// Package round turns the optimal solution of the paper's LP relaxation
// into a concrete feasible schedule by α-point rounding: job j's α-point is
// the time by which the LP has processed an α-fraction of it; scheduling
// jobs preemptively by increasing α-point converts fractional LP "advice"
// into a real schedule. The result is a feasible upper estimate of OPT that
// is usually tighter than any single online policy — it is used to bracket
// competitive ratios from the other side of the LP/2 lower bound.
//
// α-point rounding is the classic technique for completion-time objectives
// (and appears in the broadcast-scheduling literature the paper's Related
// Work cites); for ℓk flow objectives it is a strong heuristic rather than
// a proven O(1)-approximation — which is fine for its role here as a
// certified-feasible denominator.
package round

import (
	"fmt"

	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
)

// Options configures the rounding.
type Options struct {
	// Alphas are the α values tried; the best resulting schedule is kept.
	// Empty → {0.25, 0.5, 0.75}.
	Alphas []float64
	// LP tunes the underlying relaxation (WantSolution is forced on).
	LP lp.Options
}

// Result is the best rounded schedule.
type Result struct {
	// Res is the simulated schedule under the winning α-point ordering.
	Res *core.Result
	// Alpha is the winning α; Power is its Σ F^k.
	Alpha float64
	Power float64
	// Bound is the LP bound the solution came from.
	Bound lp.Bound
}

// Schedule computes the LP optimum and returns the best α-point schedule
// for the k-th power flow objective on m unit-speed machines.
func Schedule(in *core.Instance, m, k int, opts Options) (*Result, error) {
	alphas := opts.Alphas
	if len(alphas) == 0 {
		alphas = []float64{0.25, 0.5, 0.75}
	}
	lpOpts := opts.LP
	lpOpts.WantSolution = true
	bound, err := lp.KPowerLowerBound(in, m, k, lpOpts)
	if err != nil {
		return nil, err
	}
	inst := in.Clone()
	inst.Normalize()
	if inst.N() == 0 {
		return &Result{Res: &core.Result{}, Bound: bound}, nil
	}
	if len(bound.Solution) == 0 {
		return nil, fmt.Errorf("round: LP returned no solution (degenerate discretization?)")
	}

	// Per-job cumulative assignment in slot order (Solution is sorted by
	// job then slot).
	type frac struct {
		slot, work float64
	}
	perJob := make([][]frac, inst.N())
	totals := make([]float64, inst.N())
	for _, a := range bound.Solution {
		perJob[a.Job] = append(perJob[a.Job], frac{a.SlotStart, a.Work})
		totals[a.Job] += a.Work
	}

	best := &Result{Alpha: -1}
	for _, alpha := range alphas {
		prio := make(map[int]float64, inst.N())
		for i, fr := range perJob {
			if totals[i] <= 0 {
				// Jobs the discretization dropped (sub-unit supplies)
				// keep +Inf priority via map absence.
				continue
			}
			target := alpha * totals[i]
			acc := 0.0
			point := fr[len(fr)-1].slot
			for _, f := range fr {
				acc += f.work
				if acc >= target-1e-12 {
					point = f.slot
					break
				}
			}
			prio[inst.Jobs[i].ID] = point
		}
		res, err := core.Run(inst, policy.NewStaticPriority(prio), core.Options{Machines: m, Speed: 1})
		if err != nil {
			return nil, err
		}
		power := metrics.KthPowerSum(res.Flow, k)
		if best.Alpha < 0 || power < best.Power {
			best = &Result{Res: res, Alpha: alpha, Power: power, Bound: bound}
		}
	}
	return best, nil
}

// Package opt computes the exact offline optimum of Σ_j (C_j − r_j)^k for
// preemptive scheduling on a single unit-speed machine, by branch and bound.
//
// It relies on the classical structural fact that for any objective that is
// a sum of non-decreasing functions of job completion times, some optimal
// preemptive single-machine schedule preempts only at release times: between
// consecutive decision instants (releases and completions) the machine runs
// a single job, and it never idles while jobs are alive. The search
// therefore branches, at each decision instant, on which alive job to run
// until the next instant.
//
// The intended use is validation at small n: anchoring the LP lower bound,
// verifying SRPT's ℓ1-optimality (the folklore claim the paper quotes), and
// giving exact competitive ratios for the experiment harness's tiny
// instances (E10).
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"rrnorm/internal/core"
	"rrnorm/internal/metrics"
)

// Options bounds the search.
type Options struct {
	// MaxJobs rejects instances larger than this (default 10): the search
	// is exponential.
	MaxJobs int
	// MaxNodes aborts the search after this many nodes (default 50M).
	MaxNodes int64
}

// Result is an exact optimum.
type Result struct {
	// Cost is the minimal Σ_j (C_j − r_j)^k.
	Cost float64
	// Completion holds the optimal completion times in normalized
	// (Release, ID) instance order.
	Completion []float64
	// Nodes is the number of search nodes explored.
	Nodes int64
}

// Search failures.
var (
	ErrTooLarge  = errors.New("opt: instance too large for exact search")
	ErrNodeLimit = errors.New("opt: node budget exhausted")
)

// Exact computes the optimal k-th power flow on one unit-speed machine.
func Exact(in *core.Instance, k int, opts Options) (Result, error) {
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("opt: k must be ≥ 1, got %d", k)
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 10
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	inst := in.Clone()
	inst.Normalize()
	n := inst.N()
	if n > maxJobs {
		return Result{}, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, maxJobs)
	}
	if n == 0 {
		return Result{Cost: 0}, nil
	}

	s := &searcher{
		jobs:     inst.Jobs,
		k:        k,
		maxNodes: maxNodes,
		rem:      make([]float64, n),
		comp:     make([]float64, n),
		bestComp: make([]float64, n),
		best:     math.Inf(1),
	}
	for i, j := range inst.Jobs {
		s.rem[i] = j.Size
	}
	// Seed the incumbent with SRPT to prune aggressively from the start.
	s.seedIncumbent()
	if err := s.dfs(inst.Jobs[0].Release, 0, 0, 0); err != nil {
		return Result{}, err
	}
	return Result{Cost: s.best, Completion: s.bestComp, Nodes: s.nodes}, nil
}

type searcher struct {
	jobs     []core.Job
	k        int
	maxNodes int64
	nodes    int64

	rem      []float64 // remaining work (0 = done)
	comp     []float64 // completion times of done jobs
	best     float64
	bestComp []float64
}

// seedIncumbent runs SRPT (preempting at releases and completions) to obtain
// an initial upper bound. SRPT is optimal for k=1 and a good incumbent for
// all k.
func (s *searcher) seedIncumbent() {
	n := len(s.jobs)
	rem := make([]float64, n)
	comp := make([]float64, n)
	for i, j := range s.jobs {
		rem[i] = j.Size
	}
	now := s.jobs[0].Release
	next := 0
	done := 0
	cost := 0.0
	for done < n {
		for next < n && s.jobs[next].Release <= now {
			next++
		}
		// Pick the alive job (released, unfinished) with least remaining.
		pick := -1
		for i := 0; i < next; i++ {
			if rem[i] > 0 && (pick < 0 || rem[i] < rem[pick]) {
				pick = i
			}
		}
		if pick < 0 {
			now = s.jobs[next].Release
			continue
		}
		d := rem[pick]
		if next < n && s.jobs[next].Release-now < d {
			d = s.jobs[next].Release - now
		}
		rem[pick] -= d
		now += d
		if rem[pick] <= 0 {
			comp[pick] = now
			cost += metrics.PowK(now-s.jobs[pick].Release, s.k)
			done++
		}
	}
	s.best = cost
	copy(s.bestComp, comp)
}

// lowerBound returns an admissible bound on the remaining cost given the
// current time, using machine-capacity order statistics: sort the remaining
// work of alive jobs; the i-th completion among them is at least
// now + (sum of the i smallest remainders); match those completion lower
// bounds to releases so the cost is minimized (largest completion with the
// latest release). Future (unreleased) jobs contribute their isolated bound
// (run alone immediately at release).
func (s *searcher) lowerBound(now float64, next int) float64 {
	type ar struct{ rem, rel float64 }
	var alive []ar
	for i := 0; i < next; i++ {
		if s.rem[i] > 0 {
			alive = append(alive, ar{s.rem[i], s.jobs[i].Release})
		}
	}
	lb := 0.0
	for i := next; i < len(s.jobs); i++ {
		lb += metrics.PowK(s.jobs[i].Size, s.k)
	}
	if len(alive) == 0 {
		return lb
	}
	sort.Slice(alive, func(a, b int) bool { return alive[a].rem < alive[b].rem })
	// Completion lower bounds ascending.
	cls := make([]float64, len(alive))
	acc := now
	for i, a := range alive {
		acc += a.rem
		cls[i] = acc
	}
	// Pair ascending completions with ascending releases (rearrangement:
	// to minimize Σ (C_{σ(i)} − r_i)^k with convex power, pair sorted with
	// sorted).
	rels := make([]float64, len(alive))
	for i, a := range alive {
		rels[i] = a.rel
	}
	sort.Float64s(rels)
	for i := range cls {
		f := cls[i] - rels[i]
		if f < 0 {
			f = 0
		}
		lb += metrics.PowK(f, s.k)
	}
	return lb
}

// dfs explores decision instants. now is the current time, next the index
// of the first unreleased job, done the number completed, cost the cost so
// far.
func (s *searcher) dfs(now float64, next, done int, cost float64) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return fmt.Errorf("%w: %d nodes", ErrNodeLimit, s.nodes)
	}
	n := len(s.jobs)
	if done == n {
		if cost < s.best {
			s.best = cost
			copy(s.bestComp, s.comp)
		}
		return nil
	}
	// Admit pending arrivals at the current instant.
	for next < n && s.jobs[next].Release <= now {
		next++
	}
	// If nothing is alive, jump to the next release.
	anyAlive := false
	for i := 0; i < next; i++ {
		if s.rem[i] > 0 {
			anyAlive = true
			break
		}
	}
	if !anyAlive {
		return s.dfs(s.jobs[next].Release, next, done, cost)
	}
	if cost+s.lowerBound(now, next) >= s.best {
		return nil
	}

	nextRel := math.Inf(1)
	if next < n {
		nextRel = s.jobs[next].Release
	}
	// Branch: run each distinct alive job until completion or next release.
	for i := 0; i < next; i++ {
		if s.rem[i] <= 0 {
			continue
		}
		// Symmetry pruning: among jobs with identical (remaining,
		// release), branch only on the first.
		dup := false
		for j := 0; j < i; j++ {
			if s.rem[j] > 0 && s.rem[j] == s.rem[i] && s.jobs[j].Release == s.jobs[i].Release {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if now+s.rem[i] <= nextRel {
			// Runs to completion before the next release.
			d := s.rem[i]
			c := now + d
			s.rem[i] = 0
			s.comp[i] = c
			f := metrics.PowK(c-s.jobs[i].Release, s.k)
			if err := s.dfs(c, next, done+1, cost+f); err != nil {
				return err
			}
			s.rem[i] = d
		} else {
			// Runs until the next release (partial).
			d := nextRel - now
			if d <= 0 {
				continue
			}
			s.rem[i] -= d
			if err := s.dfs(nextRel, next, done, cost); err != nil {
				return err
			}
			s.rem[i] += d
		}
	}
	return nil
}

package opt

import (
	"errors"
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func TestExactSingleJob(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 1, Size: 3}})
	for k := 1; k <= 3; k++ {
		r, err := Exact(in, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := metrics.PowK(3, k); math.Abs(r.Cost-want) > 1e-9 {
			t.Fatalf("k=%d: cost %v, want %v", k, r.Cost, want)
		}
		if math.Abs(r.Completion[0]-4) > 1e-9 {
			t.Fatalf("completion %v", r.Completion[0])
		}
	}
}

func TestExactTwoJobsBatch(t *testing.T) {
	// Sizes 1 and 2 at time 0, k=2: run short first → 1² + 3² = 10.
	// (Long first gives 2² + 3² = 13.)
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 0, Size: 1}})
	r, err := Exact(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-10) > 1e-9 {
		t.Fatalf("cost %v, want 10", r.Cost)
	}
}

func TestExactPreemptionUsed(t *testing.T) {
	// Long job (size 10) at 0; tiny job (size 1) at 1. k=1. Optimal
	// preempts: flows 11 and 1 → 12. Non-preemptive would be 10 + 10 = 20.
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 10}, {ID: 1, Release: 1, Size: 1}})
	r, err := Exact(in, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-12) > 1e-9 {
		t.Fatalf("cost %v, want 12", r.Cost)
	}
}

func TestExactIdleGap(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 5, Size: 1}})
	r, err := Exact(in, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-2) > 1e-9 {
		t.Fatalf("cost %v, want 2", r.Cost)
	}
}

func TestExactRejectsLarge(t *testing.T) {
	in := workload.Batch(stats.NewRNG(1), 12, workload.FixedSizes{V: 1})
	if _, err := Exact(in, 2, Options{MaxJobs: 8}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestExactNodeLimit(t *testing.T) {
	in := workload.Poisson(stats.NewRNG(2), 8, 0.5, workload.UniformSizes{Lo: 0.5, Hi: 2})
	if _, err := Exact(in, 2, Options{MaxNodes: 3}); !errors.Is(err, ErrNodeLimit) {
		t.Fatalf("want ErrNodeLimit, got %v", err)
	}
}

func TestExactBadK(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}})
	if _, err := Exact(in, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
}

// TestSRPTOptimalForL1 verifies the folklore claim quoted in the paper's
// introduction: SRPT is optimal (1-competitive) for total flow time on a
// single machine.
func TestSRPTOptimalForL1(t *testing.T) {
	rng := stats.NewRNG(17)
	for trial := 0; trial < 40; trial++ {
		n := 2 + int(rng.Uint64()%5)
		in := workload.Poisson(rng, n, 1, workload.UniformSizes{Lo: 0.3, Hi: 2.5})
		exact, err := Exact(in, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		srpt := metrics.KthPowerSum(res.Flow, 1)
		if math.Abs(srpt-exact.Cost) > 1e-6*(1+exact.Cost) {
			t.Fatalf("trial %d: SRPT %v != OPT %v", trial, srpt, exact.Cost)
		}
	}
}

// TestExactBelowEveryPolicy: the exact optimum must lower-bound every
// feasible schedule, including rate-shared ones like RR.
func TestExactBelowEveryPolicy(t *testing.T) {
	rng := stats.NewRNG(23)
	for trial := 0; trial < 10; trial++ {
		n := 2 + int(rng.Uint64()%4)
		in := workload.Poisson(rng, n, 1, workload.ExpSizes{M: 1})
		for _, k := range []int{1, 2, 3} {
			exact, err := Exact(in, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range policy.Names() {
				p, _ := policy.New(name)
				res, err := core.Run(in, p, core.Options{Machines: 1, Speed: 1})
				if err != nil {
					t.Fatal(err)
				}
				alg := metrics.KthPowerSum(res.Flow, k)
				if exact.Cost > alg*(1+1e-7) {
					t.Fatalf("trial %d k=%d: OPT %v exceeds %s %v", trial, k, exact.Cost, name, alg)
				}
			}
		}
	}
}

// TestLPBelowExact anchors the LP relaxation: LP/2 ≤ OPT^k exactly as the
// paper's Section 3.1 argues.
func TestLPBelowExact(t *testing.T) {
	rng := stats.NewRNG(29)
	for trial := 0; trial < 10; trial++ {
		n := 2 + int(rng.Uint64()%4)
		in := workload.Poisson(rng, n, 1, workload.UniformSizes{Lo: 0.5, Hi: 2})
		for _, k := range []int{1, 2} {
			exact, err := Exact(in, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := lp.KPowerLowerBound(in, 1, k, lp.Options{Slots: 300})
			if err != nil {
				t.Fatal(err)
			}
			if b.Value > exact.Cost*(1+1e-7) {
				t.Fatalf("trial %d k=%d: LP bound %v exceeds exact OPT %v (%s)",
					trial, k, b.Value, exact.Cost, b.Method)
			}
		}
	}
}

// TestExactCompletionsConsistent: reported completions must reproduce the
// reported cost and respect feasibility (C ≥ r + p at minimum capacity is
// not guaranteed with preemption, but C ≥ r + p holds on one machine).
func TestExactCompletionsConsistent(t *testing.T) {
	in := workload.Poisson(stats.NewRNG(31), 5, 1, workload.UniformSizes{Lo: 0.5, Hi: 2})
	inst := in.Clone()
	inst.Normalize()
	r, err := Exact(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var cost float64
	for i, j := range inst.Jobs {
		if r.Completion[i] < j.Release+j.Size-1e-9 {
			t.Fatalf("job %d completes at %v before r+p=%v", j.ID, r.Completion[i], j.Release+j.Size)
		}
		cost += metrics.PowK(r.Completion[i]-j.Release, 2)
	}
	if math.Abs(cost-r.Cost) > 1e-6*(1+r.Cost) {
		t.Fatalf("completions give cost %v, reported %v", cost, r.Cost)
	}
}

// TestBatchAgainstPermutations: for batch instances (all jobs at t=0) on
// one machine there is an optimal non-preemptive order, so exhaustive
// enumeration of the n! sequences is an independent oracle for Exact.
func TestBatchAgainstPermutations(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 12; trial++ {
		n := 3 + int(rng.Uint64()%3) // 3..5 jobs
		in := workload.Batch(rng, n, workload.UniformSizes{Lo: 0.5, Hi: 3})
		sizes := make([]float64, n)
		for i, j := range in.Jobs {
			sizes[i] = j.Size
		}
		for _, k := range []int{1, 2, 3} {
			exact, err := Exact(in, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			best := math.Inf(1)
			perm := make([]int, n)
			for i := range perm {
				perm[i] = i
			}
			var rec func(depth int, now, acc float64)
			rec = func(depth int, now, acc float64) {
				if acc >= best {
					return
				}
				if depth == n {
					best = acc
					return
				}
				for i := depth; i < n; i++ {
					perm[depth], perm[i] = perm[i], perm[depth]
					c := now + sizes[perm[depth]]
					rec(depth+1, c, acc+metrics.PowK(c, k))
					perm[depth], perm[i] = perm[i], perm[depth]
				}
			}
			rec(0, 0, 0)
			if math.Abs(best-exact.Cost) > 1e-6*(1+best) {
				t.Fatalf("trial %d k=%d: permutations %v vs Exact %v", trial, k, best, exact.Cost)
			}
		}
	}
}

package opt

import (
	"math"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func TestExactMFallsBackToSingle(t *testing.T) {
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 0, Size: 1}})
	a, err := ExactM(in, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exact(in, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12 {
		t.Fatalf("m=1 mismatch: %v vs %v", a.Cost, b.Cost)
	}
}

func TestExactMTwoMachinesParallel(t *testing.T) {
	// Two unit jobs at t=0 on two machines: both complete at 1 → cost 2
	// for any k.
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 0, Size: 1}})
	r, err := ExactM(in, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-2) > 1e-9 {
		t.Fatalf("cost %v, want 2", r.Cost)
	}
}

func TestExactMThreeJobsTwoMachines(t *testing.T) {
	// Sizes 1,1,1 at t=0 on 2 machines, k=1: run two, then the third:
	// flows 1,1,2 → 4.
	in := core.NewInstance([]core.Job{
		{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 0, Size: 1}, {ID: 2, Release: 0, Size: 1},
	})
	r, err := ExactM(in, 2, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-4) > 1e-9 {
		t.Fatalf("cost %v, want 4", r.Cost)
	}
}

// TestExactMAnchors: on random tiny instances with m=2, the chain
// LP/2 ≤ ExactM and ExactM ≤ SRPT's cost must hold (SRPT's multi-machine
// schedule is in the searched class).
func TestExactMAnchors(t *testing.T) {
	rng := stats.NewRNG(41)
	for trial := 0; trial < 10; trial++ {
		n := 3 + int(rng.Uint64()%3)
		in := workload.Poisson(rng, n, 0.7, workload.UniformSizes{Lo: 0.4, Hi: 2})
		for _, k := range []int{1, 2} {
			r, err := ExactM(in, 2, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := lp.KPowerLowerBound(in, 2, k, lp.Options{Slots: 300})
			if err != nil {
				t.Fatal(err)
			}
			if b.Value > r.Cost*(1+1e-7) {
				t.Fatalf("trial %d k=%d: LP bound %v above ExactM %v", trial, k, b.Value, r.Cost)
			}
			res, err := core.Run(in, policy.NewSRPT(), core.Options{Machines: 2, Speed: 1})
			if err != nil {
				t.Fatal(err)
			}
			srpt := metrics.KthPowerSum(res.Flow, k)
			if r.Cost > srpt*(1+1e-6) {
				t.Fatalf("trial %d k=%d: ExactM %v above SRPT %v", trial, k, r.Cost, srpt)
			}
		}
	}
}

func TestExactMRejectsLarge(t *testing.T) {
	in := workload.Batch(stats.NewRNG(2), 9, workload.FixedSizes{V: 1})
	if _, err := ExactM(in, 2, 2, Options{MaxJobs: 8}); err == nil {
		t.Fatal("expected ErrTooLarge")
	}
}

func TestExactMEmptyAndBadK(t *testing.T) {
	r, err := ExactM(core.NewInstance(nil), 2, 2, Options{})
	if err != nil || r.Cost != 0 {
		t.Fatalf("empty: %v %v", r, err)
	}
	in := core.NewInstance([]core.Job{{ID: 0, Release: 0, Size: 1}})
	if _, err := ExactM(in, 2, 0, Options{}); err == nil {
		t.Fatal("k=0 should fail")
	}
}

package opt

import (
	"fmt"
	"math"
	"sort"

	"rrnorm/internal/core"
	"rrnorm/internal/metrics"
)

// ExactM computes the best schedule in the event-preemptive class on m
// identical unit-speed machines: at every decision instant (release or
// completion) a subset of at most m alive jobs runs, one machine each, until
// the next instant. For m = 1 this class provably contains an optimal
// preemptive schedule (see Exact); for m ≥ 2 the problem is NP-hard even
// for k = 1 (Du–Leung) and migratory optima may in principle use rate
// sharing between events, so treat the result as a strong feasible
// upper estimate of OPT — it still certifies LP/2 ≤ OPT ≤ ExactM and it
// contains every {0,1}-rate policy schedule (SRPT, SJF, FCFS) as candidates.
func ExactM(in *core.Instance, m, k int, opts Options) (Result, error) {
	if m <= 1 {
		return Exact(in, k, opts)
	}
	if err := in.Validate(); err != nil {
		return Result{}, err
	}
	if k < 1 {
		return Result{}, fmt.Errorf("opt: k must be ≥ 1, got %d", k)
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 8
	}
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	inst := in.Clone()
	inst.Normalize()
	n := inst.N()
	if n > maxJobs {
		return Result{}, fmt.Errorf("%w: n=%d > %d", ErrTooLarge, n, maxJobs)
	}
	if n == 0 {
		return Result{Cost: 0}, nil
	}
	s := &msearcher{
		jobs:     inst.Jobs,
		m:        m,
		k:        k,
		maxNodes: maxNodes,
		rem:      make([]float64, n),
		comp:     make([]float64, n),
		bestComp: make([]float64, n),
		best:     math.Inf(1),
	}
	for i, j := range inst.Jobs {
		s.rem[i] = j.Size
	}
	s.seedSRPT()
	if err := s.dfs(inst.Jobs[0].Release, 0, 0, 0); err != nil {
		return Result{}, err
	}
	return Result{Cost: s.best, Completion: s.bestComp, Nodes: s.nodes}, nil
}

type msearcher struct {
	jobs     []core.Job
	m, k     int
	maxNodes int64
	nodes    int64
	rem      []float64
	comp     []float64
	best     float64
	bestComp []float64
}

// seedSRPT seeds the incumbent with multi-machine SRPT (top-m by remaining
// work, switching at events).
func (s *msearcher) seedSRPT() {
	n := len(s.jobs)
	rem := make([]float64, n)
	for i, j := range s.jobs {
		rem[i] = j.Size
	}
	now := s.jobs[0].Release
	next, done := 0, 0
	cost := 0.0
	comp := make([]float64, n)
	for done < n {
		for next < n && s.jobs[next].Release <= now {
			next++
		}
		var run []int
		for i := 0; i < next; i++ {
			if rem[i] > 0 {
				run = append(run, i)
			}
		}
		if len(run) == 0 {
			now = s.jobs[next].Release
			continue
		}
		sort.Slice(run, func(a, b int) bool { return rem[run[a]] < rem[run[b]] })
		if len(run) > s.m {
			run = run[:s.m]
		}
		d := math.Inf(1)
		if next < n {
			d = s.jobs[next].Release - now
		}
		for _, i := range run {
			if rem[i] < d {
				d = rem[i]
			}
		}
		now += d
		for _, i := range run {
			rem[i] -= d
			if rem[i] <= 1e-15 {
				rem[i] = 0
				comp[i] = now
				cost += metrics.PowK(now-s.jobs[i].Release, s.k)
				done++
			}
		}
	}
	s.best = cost
	copy(s.bestComp, comp)
}

// lowerBound: capacity order statistics with m machines — the i-th smallest
// completion among alive jobs is at least now + max(rem_(1),
// (Σ_{q≤i} rem_(q))/m) — paired co-monotonically with releases; future jobs
// contribute their isolated size bound.
func (s *msearcher) lowerBound(now float64, next int) float64 {
	type ar struct{ rem, rel float64 }
	var alive []ar
	for i := 0; i < next; i++ {
		if s.rem[i] > 0 {
			alive = append(alive, ar{s.rem[i], s.jobs[i].Release})
		}
	}
	lb := 0.0
	for i := next; i < len(s.jobs); i++ {
		lb += metrics.PowK(s.jobs[i].Size, s.k)
	}
	if len(alive) == 0 {
		return lb
	}
	sort.Slice(alive, func(a, b int) bool { return alive[a].rem < alive[b].rem })
	cls := make([]float64, len(alive))
	acc := 0.0
	for i, a := range alive {
		acc += a.rem
		c := acc / float64(s.m)
		if a.rem > c {
			c = a.rem
		}
		cls[i] = now + c
	}
	sort.Float64s(cls) // already sorted by construction, kept for safety
	rels := make([]float64, len(alive))
	for i, a := range alive {
		rels[i] = a.rel
	}
	sort.Float64s(rels)
	for i := range cls {
		f := cls[i] - rels[i]
		if f < 0 {
			f = 0
		}
		lb += metrics.PowK(f, s.k)
	}
	return lb
}

// dfs branches on the subset of ≤ m alive jobs to run until the next event.
func (s *msearcher) dfs(now float64, next, done int, cost float64) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return fmt.Errorf("%w: %d nodes", ErrNodeLimit, s.nodes)
	}
	n := len(s.jobs)
	if done == n {
		if cost < s.best {
			s.best = cost
			copy(s.bestComp, s.comp)
		}
		return nil
	}
	for next < n && s.jobs[next].Release <= now {
		next++
	}
	var alive []int
	for i := 0; i < next; i++ {
		if s.rem[i] > 0 {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		return s.dfs(s.jobs[next].Release, next, done, cost)
	}
	if cost+s.lowerBound(now, next) >= s.best {
		return nil
	}
	nextRel := math.Inf(1)
	if next < n {
		nextRel = s.jobs[next].Release
	}

	// Enumerate subsets of size min(m, |alive|). Running fewer than
	// min(m, alive) machines is never beneficial for flow objectives
	// (work conservation on identical machines), so only full subsets are
	// branched.
	size := s.m
	if len(alive) < size {
		size = len(alive)
	}
	subset := make([]int, 0, size)
	var enumerate func(start int) error
	enumerate = func(start int) error {
		if len(subset) == size {
			return s.step(subset, now, nextRel, next, done, cost)
		}
		for i := start; i < len(alive); i++ {
			subset = append(subset, alive[i])
			if err := enumerate(i + 1); err != nil {
				return err
			}
			subset = subset[:len(subset)-1]
		}
		return nil
	}
	return enumerate(0)
}

// step advances the chosen subset until the first completion within it or
// the next release, then recurses and restores state.
func (s *msearcher) step(subset []int, now, nextRel float64, next, done int, cost float64) error {
	d := nextRel - now
	for _, i := range subset {
		if s.rem[i] < d {
			d = s.rem[i]
		}
	}
	if d <= 0 {
		return nil
	}
	end := now + d
	saved := make([]float64, len(subset))
	for si, i := range subset {
		saved[si] = s.rem[i]
		s.rem[i] -= d
		if s.rem[i] <= 1e-12 {
			s.rem[i] = 0
			s.comp[i] = end
			cost += metrics.PowK(end-s.jobs[i].Release, s.k)
			done++
		}
	}
	err := s.dfs(end, next, done, cost)
	for si, i := range subset {
		s.rem[i] = saved[si]
	}
	return err
}

package rrnorm_test

import (
	"math"
	"testing"

	"rrnorm"
	"rrnorm/internal/core"
	"rrnorm/internal/dual"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// TestMM1PSMeanSojourn validates the engine against queueing theory: an
// M/M/1 queue under processor sharing has mean sojourn time
// E[T] = E[S]/(1−ρ), and RR is exactly PS in the simulator. With
// E[S] = 1 and ρ = 0.7, E[T] = 10/3.
func TestMM1PSMeanSojourn(t *testing.T) {
	if testing.Short() {
		t.Skip("long stochastic validation")
	}
	const load = 0.7
	in := workload.PoissonLoad(stats.NewRNG(101), 60000, 1, load, workload.ExpSizes{M: 1})
	res, err := core.Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - load)
	got := metrics.Mean(res.Flow)
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("M/M/1-PS mean sojourn: simulated %v, theory %v", got, want)
	}
}

// TestPSInsensitivity: the PS queue's mean sojourn depends on the service
// distribution only through its mean (insensitivity). Exponential,
// deterministic and heavy-tailed sizes with equal means must give RR the
// same mean flow at the same load.
func TestPSInsensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("long stochastic validation")
	}
	const load = 0.6
	mean := func(dist workload.SizeDist, seed uint64) float64 {
		scaled := workload.PoissonLoad(stats.NewRNG(seed), 60000, 1, load, dist)
		res, err := core.Run(scaled, policy.NewRR(), core.Options{Machines: 1, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Normalize by the distribution mean so different E[S] compare.
		return metrics.Mean(res.Flow) / dist.Mean()
	}
	exp := mean(workload.ExpSizes{M: 1}, 7)
	det := mean(workload.FixedSizes{V: 1}, 8)
	par := mean(workload.ParetoSizes{Alpha: 2.5, Xm: 1}, 9)
	want := 1 / (1 - load)
	for name, got := range map[string]float64{"exp": exp, "det": det, "pareto": par} {
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("PS insensitivity (%s): normalized sojourn %v, theory %v", name, got, want)
		}
	}
}

// TestMM1FCFSMeanSojourn: M/M/1 FCFS has E[T] = 1/(μ−λ) as well; with
// μ = 1 and λ = 0.7 that is 10/3 — a second closed form, on a different
// policy path through the engine.
func TestMM1FCFSMeanSojourn(t *testing.T) {
	if testing.Short() {
		t.Skip("long stochastic validation")
	}
	const load = 0.7
	in := workload.PoissonLoad(stats.NewRNG(103), 60000, 1, load, workload.ExpSizes{M: 1})
	res, err := core.Run(in, policy.NewFCFS(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - load)
	got := metrics.Mean(res.Flow)
	if math.Abs(got-want) > 0.12*want {
		t.Fatalf("M/M/1-FCFS mean sojourn: simulated %v, theory %v", got, want)
	}
}

// TestSRPTDominatesMeanFlow: SRPT minimizes total flow on one machine, so
// on any instance its mean flow is at most every other policy's.
func TestSRPTDominatesMeanFlow(t *testing.T) {
	in := workload.PoissonLoad(stats.NewRNG(104), 2000, 1, 0.9, workload.ParetoSizes{Alpha: 1.7, Xm: 1})
	srpt, err := core.Run(in, policy.NewSRPT(), core.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := metrics.Mean(srpt.Flow)
	for _, name := range policy.Names() {
		p, _ := policy.New(name)
		res, err := core.Run(in, p, core.Options{Machines: 1, Speed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if metrics.Mean(res.Flow) < base*(1-1e-9) {
			t.Errorf("%s beats SRPT on mean flow: %v < %v", name, metrics.Mean(res.Flow), base)
		}
	}
}

// TestFullPipeline exercises the whole chain on one instance: simulate →
// validate → fractional flows → LP bound → dual certificate, checking the
// cross-module inequalities that tie the system together.
func TestFullPipeline(t *testing.T) {
	in := rrnorm.FromSpecMust("poisson:n=80,load=0.9,dist=pareto,alpha=1.9,xm=0.5", 55)
	const k = 2
	const eps = 0.05

	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 2, Speed: dual.Eta(k, eps), RecordSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateResult(res); err != nil {
		t.Fatal(err)
	}
	ff, err := core.FractionalFlows(res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ff {
		if ff[i] > res.Flow[i] {
			t.Fatalf("fractional flow exceeds flow for job %d", i)
		}
	}
	bound, err := lp.KPowerLowerBound(in, 2, k, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := dual.Build(res, k, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible {
		t.Fatalf("certificate infeasible at theorem speed: %v", cert.MaxViolation)
	}
	// Weak duality chain: dual objective ≤ γ·LP ≤ 2γ·OPT^k, and the
	// certified ratio must cover the measured one:
	// RR^k / OPT^k ≤ RR^k / (LP/2) must be ≤ ImpliedPowerRatio... only
	// when the bound is the LP (not the size bound); check the safe
	// direction: RR^k ≤ ImpliedPowerRatio × bound.
	rrPower := metrics.KthPowerSum(res.Flow, k)
	if rrPower > cert.ImpliedPowerRatio*bound.Value*(1+1e-6) {
		t.Fatalf("certified chain violated: %v > %v × %v", rrPower, cert.ImpliedPowerRatio, bound.Value)
	}
}

// TestGanttOnRealSchedule smoke-tests the renderer against a sizable run.
func TestGanttOnRealSchedule(t *testing.T) {
	in := rrnorm.FromSpecMust("bursts:bursts=3,size=4,period=8", 1)
	res, err := rrnorm.Simulate(in, "SRPT", rrnorm.Options{Machines: 2, Speed: 1, RecordSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	out := core.RenderGantt(res, 72)
	if len(out) == 0 || out == "(empty schedule)\n" {
		t.Fatal("gantt empty")
	}
}

// TestGittinsOrdering: the distribution-aware Gittins policy sits between
// oblivious RR and clairvoyant SRPT on heavy-tailed M/G/1 mean flow, and
// ties the other non-clairvoyant policies on memoryless (exponential)
// service where the index is flat.
func TestGittinsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("stochastic validation")
	}
	newGittins := func(d workload.SizeDist) *policy.Gittins {
		cdf, sup, ok := workload.CDFOf(d)
		if !ok {
			t.Fatalf("no CDF for %s", d.Name())
		}
		return policy.NewGittins(cdf, sup, 1500)
	}
	meanFlow := func(in *core.Instance, p core.Policy) float64 {
		res, err := core.Run(in, p, core.Options{Machines: 1, Speed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Mean(res.Flow)
	}

	// Heavy-tailed: SRPT ≤ Gittins ≤ RR (strictly separated with margin).
	pareto := workload.ParetoSizes{Alpha: 1.6, Xm: 1, Cap: 100}
	inP := workload.PoissonLoad(stats.NewRNG(301), 20000, 1, 0.8, pareto)
	gp := meanFlow(inP, newGittins(pareto))
	rr := meanFlow(inP, policy.NewRR())
	srpt := meanFlow(inP, policy.NewSRPT())
	if !(srpt <= gp*1.02) {
		t.Fatalf("SRPT %v should beat Gittins %v", srpt, gp)
	}
	if !(gp < rr*0.9) {
		t.Fatalf("Gittins %v should clearly beat RR %v on heavy tails", gp, rr)
	}

	// Exponential: flat index ⇒ Gittins mean ≈ RR mean (both are
	// non-clairvoyant under memoryless service).
	expd := workload.ExpSizes{M: 1}
	inE := workload.PoissonLoad(stats.NewRNG(302), 20000, 1, 0.8, expd)
	ge := meanFlow(inE, newGittins(expd))
	rre := meanFlow(inE, policy.NewRR())
	if math.Abs(ge-rre) > 0.1*rre {
		t.Fatalf("exp service: Gittins %v vs RR %v should be close", ge, rre)
	}
}

package rrnorm_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"testing"
	"time"

	"rrnorm/internal/batch"
	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// --- allocation budget (tier-1 + CI bench smoke) -----------------------------

// TestEngineAllocBudget pins the engine hot path's allocation budget: after
// one warm-up run on a workspace, a simulation must perform zero heap
// allocations per run. This is the regression harness behind the workspace
// layer (DESIGN.md §12) — any closure that starts escaping, any buffer that
// stops being reused, shows up here as a hard failure, in `go test ./...`
// and in the CI bench smoke job alike.
func TestEngineAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is disturbed by -short test interleavings")
	}
	in := workload.PoissonLoad(stats.NewRNG(7), 2000, 2, 0.9, workload.ExpSizes{M: 1})
	cases := []struct {
		name   string
		pol    core.Policy
		engine core.EngineKind
		mm     core.Machines
	}{
		{"fast/RR", policy.NewRR(), core.EngineFast, core.Machines{}},
		{"fast/SRPT", policy.NewSRPT(), core.EngineFast, core.Machines{}},
		{"fast/SJF", policy.NewSJF(), core.EngineFast, core.Machines{}},
		{"fast/FCFS", policy.NewFCFS(), core.EngineFast, core.Machines{}},
		{"reference/RR", policy.NewRR(), core.EngineReference, core.Machines{}},
		// The heterogeneous RR fast path must hold the same budget: the
		// machine env and water-filling share table live on the workspace
		// scratch and are rebuilt allocation-free once warm.
		{"fast/RR-hetero", policy.NewRR(), core.EngineFast, core.Machines{Speeds: []float64{1, 3}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := core.NewWorkspace()
			opts := core.Options{Machines: 2, Speed: 1, Engine: tc.engine, MachineModel: tc.mm}
			run := func() {
				if _, err := fast.RunWS(in, tc.pol, opts, ws); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm-up: grows the buffers, attaches the engine scratch
			if allocs := testing.AllocsPerRun(10, run); allocs > 0 {
				t.Errorf("%s: %v allocs/run in steady state, want 0", tc.name, allocs)
			}
		})
	}
}

// --- benchmark grid ----------------------------------------------------------

// engineGridCell is one point of the committed BENCH_engine.json grid.
// NsPerJob = NsPerOp / N is the scale-free cost: a flat ns_per_job column
// is the linear-scaling claim made concrete.
type engineGridCell struct {
	Policy      string  `json:"policy"`
	N           int     `json:"n"`
	Machines    int     `json:"machines"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerJob    float64 `json:"ns_per_job"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var engineGridNs = []int{1_000, 10_000, 100_000, 1_000_000}
var engineGridMs = []int{1, 8}

func engineGridInstance(n, m int) *core.Instance {
	return workload.PoissonLoad(stats.NewRNG(1), n, m, 0.9, workload.ExpSizes{M: 1})
}

func benchEngineCell(b *testing.B, pol string, n, m int, ws *core.Workspace) {
	b.Helper()
	in := engineGridInstance(n, m)
	p, err := policy.New(pol)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Machines: m, Speed: 1, Engine: core.EngineFast}
	if _, err := fast.RunWS(in, p, opts, ws); err != nil {
		b.Fatal(err) // warm-up
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fast.RunWS(in, p, opts, ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "jobs/op")
}

// BenchmarkEngineWorkspaceGrid is the RR/SRPT × n × m grid recorded in
// BENCH_engine.json (`make bench-engine` refreshes it). Steady state with
// workspace reuse: 0 allocs/op across the whole grid. The n=10⁶ cells are
// skipped under -short so the CI bench-smoke pass stays quick — the
// TestBenchSmokeRatchet gate covers n=10⁶ there.
func BenchmarkEngineWorkspaceGrid(b *testing.B) {
	ws := core.NewWorkspace()
	for _, pol := range []string{"RR", "SRPT"} {
		for _, n := range engineGridNs {
			for _, m := range engineGridMs {
				if n > 100_000 && testing.Short() {
					continue
				}
				b.Run(fmt.Sprintf("%s/n=%d/m=%d", pol, n, m), func(b *testing.B) {
					benchEngineCell(b, pol, n, m, ws)
				})
			}
		}
	}
}

// --- bench-smoke ratchet -----------------------------------------------------

// benchSmokeMedianRun times reps runs of RR at n on a warmed workspace and
// returns the median wall time — single runs at this scale are noisy enough
// (allocator, frequency scaling) that a lone sample can ratchet-flake.
func benchSmokeMedianRun(t *testing.T, in *core.Instance, opts core.Options, ws *core.Workspace, reps int) time.Duration {
	t.Helper()
	p := policy.NewRR()
	if _, err := fast.RunWS(in, p, opts, ws); err != nil {
		t.Fatal(err)
	}
	times := make([]time.Duration, reps)
	for i := range times {
		t0 := time.Now()
		if _, err := fast.RunWS(in, p, opts, ws); err != nil {
			t.Fatal(err)
		}
		times[i] = time.Since(t0)
	}
	for i := range times { // insertion sort; reps is tiny
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[reps/2]
}

// TestBenchSmokeRatchet is the CI performance ratchet for the bulk-advance
// engine (`make bench-smoke` runs it): at n=10⁶, the batched fast RR path
// must beat the reference per-epoch engine by ≥2× and must not regress
// more than 10% against the stepped fast loop it replaced. (The stepped
// fast loop is itself far from the reference engine, so 2× over stepped is
// not attainable — the batched win there is the ~1.2× recorded in
// BENCH_engine.json's batched_vs_stepped section; the ratchet holds the 2×
// bar against the per-epoch reference path and guards the stepped delta.)
func TestBenchSmokeRatchet(t *testing.T) {
	if testing.Short() {
		t.Skip("ratchet times n=1e6 runs; skipped under -short")
	}
	const n = 1_000_000
	in := engineGridInstance(n, 1)
	ws := core.NewWorkspace()
	opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}

	batched := benchSmokeMedianRun(t, in, opts, ws, 5)

	prev := fast.SetSteppedAdvance(true)
	stepped := benchSmokeMedianRun(t, in, opts, ws, 5)
	fast.SetSteppedAdvance(prev)

	refOpts := opts
	refOpts.Engine = core.EngineReference
	reference := benchSmokeMedianRun(t, in, refOpts, ws, 3)

	vsRef := float64(reference) / float64(batched)
	vsStepped := float64(stepped) / float64(batched)
	t.Logf("RR n=%d: batched %v, stepped %v (%.2fx), reference %v (%.2fx)",
		n, batched, stepped, vsStepped, reference, vsRef)
	if vsRef < 2.0 {
		t.Errorf("batched RR n=%d is only %.2fx the reference per-epoch engine, ratchet floor is 2.0x", n, vsRef)
	}
	if vsStepped < 0.90 {
		t.Errorf("batched RR n=%d regressed to %.2fx of the stepped loop, floor is 0.90x", n, vsStepped)
	}

	// Heterogeneous speeds ride the same batched path through the
	// water-filling share table; hold that path to the stepped loop too so
	// it cannot silently regress to alloc-per-step or per-epoch work.
	hetIn := engineGridInstance(n, 2)
	hetOpts := core.Options{Machines: 2, Speed: 1, Engine: core.EngineFast,
		MachineModel: core.Machines{Speeds: []float64{1, 3}}}
	hetBatched := benchSmokeMedianRun(t, hetIn, hetOpts, ws, 5)
	prev = fast.SetSteppedAdvance(true)
	hetStepped := benchSmokeMedianRun(t, hetIn, hetOpts, ws, 5)
	fast.SetSteppedAdvance(prev)
	hetVs := float64(hetStepped) / float64(hetBatched)
	t.Logf("RR-hetero n=%d speeds=[1 3]: batched %v, stepped %v (%.2fx)", n, hetBatched, hetStepped, hetVs)
	if hetVs < 0.90 {
		t.Errorf("batched heterogeneous RR n=%d regressed to %.2fx of the stepped loop, floor is 0.90x", n, hetVs)
	}
}

// --- committed baseline (make bench-engine) ----------------------------------

// engineBenchBaseline is the schema of BENCH_engine.json.
type engineBenchBaseline struct {
	Benchmark string           `json:"benchmark"`
	GoMaxProc int              `json:"gomaxprocs"`
	Grid      []engineGridCell `json:"grid"`
	// WorkspaceVsFresh records the n=10000 single-machine RR/SRPT runs with
	// and without workspace reuse (fresh still benefits from this PR's
	// closure-free engine rewrite; reuse additionally drops allocs/op to 0).
	WorkspaceVsFresh map[string]engineWsVsFresh `json:"workspace_vs_fresh_n10000"`
	// VsSeed compares the workspace-reuse fast RR path against the
	// pre-workspace engine (seed commit), measured on the same machine.
	// Improvement = 1 − current/seed ns/op; the acceptance floor at
	// n=10000 is 0.25.
	VsSeed map[string]engineVsSeed `json:"vs_seed_fast_rr"`
	// BatchedVsStepped records the bulk-advance speedup over the stepped
	// event loop it replaced, same workload and workspace, fast engine.
	BatchedVsStepped map[string]engineBatchedVsStepped `json:"batched_vs_stepped"`
	// BigRuns are single timed runs (one untimed warm-up on the same
	// workspace first) at the scales the grid cannot afford to repeat.
	// The RR n=10⁷ rows carry the PR's headline gate: wall < 1s.
	BigRuns []engineBigRun `json:"big_runs"`
	// Sharded compares serial fast SRPT at m=8 against the machine-sharded
	// parallel runner at GOMAXPROCS workers. Speedup ≈ 1 on a single-CPU
	// host — the ≥3x gate only arms when GOMAXPROCS ≥ 4.
	Sharded []engineShardRun `json:"sharded_srpt"`
}

type engineBatchedVsStepped struct {
	BatchedNsPerOp float64 `json:"batched_ns_per_op"`
	SteppedNsPerOp float64 `json:"stepped_ns_per_op"`
	Speedup        float64 `json:"speedup"`
}

type engineBigRun struct {
	Policy    string  `json:"policy"`
	N         int     `json:"n"`
	Machines  int     `json:"machines"`
	WallSec   float64 `json:"wall_sec"`
	NsPerJob  float64 `json:"ns_per_job"`
	AllocsRun int64   `json:"allocs_per_run"`
}

type engineShardRun struct {
	N           int     `json:"n"`
	Machines    int     `json:"machines"`
	Workers     int     `json:"workers"`
	SerialSec   float64 `json:"serial_sec"`
	ShardedSec  float64 `json:"sharded_sec"`
	Speedup     float64 `json:"speedup"`
	GateArmed   bool    `json:"gate_armed"`
	GateSpeedup float64 `json:"gate_speedup"`
}

// seedFastRRNsPerOp is BenchmarkEngineFastVsReference/n=<n>/fast on the
// seed commit (54df534, before the workspace layer and the closure-free
// engine rewrite), measured on the reference machine at -benchtime=500x.
// Refresh these alongside BENCH_engine.json when re-baselining on new
// hardware.
var seedFastRRNsPerOp = map[int]float64{
	10_000:  1_624_384,
	100_000: 18_426_619,
}

type engineVsSeed struct {
	SeedNsPerOp    float64 `json:"seed_ns_per_op"`
	CurrentNsPerOp float64 `json:"current_ns_per_op"`
	Improvement    float64 `json:"improvement"`
}

type engineWsVsFresh struct {
	FreshNsPerOp    float64 `json:"fresh_ns_per_op"`
	WsNsPerOp       float64 `json:"ws_ns_per_op"`
	FreshAllocsPerO int64   `json:"fresh_allocs_per_op"`
	WsAllocsPerOp   int64   `json:"ws_allocs_per_op"`
	Improvement     float64 `json:"improvement"`
}

// TestWriteEngineBenchBaseline rewrites BENCH_engine.json. Gated behind
// WRITE_BENCH=1 (`make bench-engine`) because it runs the full benchmark
// grid; it also enforces the PR's acceptance floor — ≥25% ns/op improvement
// over the seed engine for fast RR at n=10000 and 0 allocs/op across the
// grid — so the committed numbers can never drift below what the README
// claims.
func TestWriteEngineBenchBaseline(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to rewrite BENCH_engine.json")
	}
	base := engineBenchBaseline{
		Benchmark:        "BenchmarkEngineWorkspaceGrid",
		GoMaxProc:        runtime.GOMAXPROCS(0),
		WorkspaceVsFresh: map[string]engineWsVsFresh{},
	}
	// The big single runs and the sharded comparison go first, on a fresh
	// heap: a 10⁷-job run is sensitive to allocator fragmentation, and the
	// grid's churn costs it ~15% if it runs after. Their instances and
	// workspace die with this block so the grid measures clean in turn.
	writeBigRuns(t, &base)
	runtime.GC()
	ws := core.NewWorkspace()
	for _, pol := range []string{"RR", "SRPT"} {
		for _, n := range engineGridNs {
			for _, m := range engineGridMs {
				r := testing.Benchmark(func(b *testing.B) {
					benchEngineCell(b, pol, n, m, ws)
				})
				cell := engineGridCell{
					Policy:      pol,
					N:           n,
					Machines:    m,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				}
				cell.NsPerJob = cell.NsPerOp / float64(n)
				base.Grid = append(base.Grid, cell)
				t.Logf("%s n=%d m=%d: %.0f ns/op (%.1f ns/job), %d allocs/op, %d B/op",
					pol, n, m, cell.NsPerOp, cell.NsPerJob, cell.AllocsPerOp, cell.BytesPerOp)
				if cell.AllocsPerOp > 0 {
					t.Errorf("%s n=%d m=%d: %d allocs/op, budget is 0", pol, n, m, cell.AllocsPerOp)
				}
			}
		}
	}
	for _, pol := range []string{"RR", "SRPT"} {
		in := engineGridInstance(10_000, 1)
		p, err := policy.New(pol)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}
		fresh := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fast.Run(in, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		reused := testing.Benchmark(func(b *testing.B) {
			if _, err := fast.RunWS(in, p, opts, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fast.RunWS(in, p, opts, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		freshNs := float64(fresh.T.Nanoseconds()) / float64(fresh.N)
		wsNs := float64(reused.T.Nanoseconds()) / float64(reused.N)
		imp := 1 - wsNs/freshNs
		base.WorkspaceVsFresh[pol] = engineWsVsFresh{
			FreshNsPerOp:    freshNs,
			WsNsPerOp:       wsNs,
			FreshAllocsPerO: fresh.AllocsPerOp(),
			WsAllocsPerOp:   reused.AllocsPerOp(),
			Improvement:     imp,
		}
		t.Logf("%s n=10000: fresh %.0f ns/op (%d allocs/op) vs workspace %.0f ns/op (%d allocs/op): %.1f%% faster",
			pol, freshNs, fresh.AllocsPerOp(), wsNs, reused.AllocsPerOp(), imp*100)
		if reused.AllocsPerOp() > 0 {
			t.Errorf("%s n=10000: %d allocs/op with workspace reuse, budget is 0", pol, reused.AllocsPerOp())
		}
	}
	// Acceptance floor: the workspace-reuse fast RR path must beat the
	// seed engine by ≥25% ns/op at n=10000 (same instance as the seed
	// measurement: BenchmarkEngineFastVsReference's 0.98-load workload).
	base.VsSeed = map[string]engineVsSeed{}
	for _, n := range []int{10_000, 100_000} {
		in := workload.PoissonLoad(stats.NewRNG(1), n, 1, 0.98, workload.ExpSizes{M: 1})
		opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}
		p := policy.NewRR()
		r := testing.Benchmark(func(b *testing.B) {
			if _, err := fast.RunWS(in, p, opts, ws); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fast.RunWS(in, p, opts, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		cur := float64(r.T.Nanoseconds()) / float64(r.N)
		imp := 1 - cur/seedFastRRNsPerOp[n]
		base.VsSeed[fmt.Sprintf("n=%d", n)] = engineVsSeed{
			SeedNsPerOp:    seedFastRRNsPerOp[n],
			CurrentNsPerOp: cur,
			Improvement:    imp,
		}
		t.Logf("fast RR n=%d: seed %.0f ns/op vs current %.0f ns/op: %.1f%% faster",
			n, seedFastRRNsPerOp[n], cur, imp*100)
		if n == 10_000 && imp < 0.25 {
			t.Errorf("fast RR n=10000: %.1f%% ns/op improvement vs seed, acceptance floor is 25%%", imp*100)
		}
	}
	// Batched vs stepped at the grid's top scales, RR m=1.
	base.BatchedVsStepped = map[string]engineBatchedVsStepped{}
	for _, n := range []int{100_000, 1_000_000} {
		in := engineGridInstance(n, 1)
		opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}
		batched := benchSmokeMedianRun(t, in, opts, ws, 5)
		prev := fast.SetSteppedAdvance(true)
		stepped := benchSmokeMedianRun(t, in, opts, ws, 5)
		fast.SetSteppedAdvance(prev)
		e := engineBatchedVsStepped{
			BatchedNsPerOp: float64(batched.Nanoseconds()),
			SteppedNsPerOp: float64(stepped.Nanoseconds()),
			Speedup:        float64(stepped) / float64(batched),
		}
		base.BatchedVsStepped[fmt.Sprintf("RR/n=%d", n)] = e
		t.Logf("RR n=%d: batched %v vs stepped %v: %.2fx", n, batched, stepped, e.Speedup)
	}

	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_engine.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_engine.json")
}

// bigRunChildEnv carries "n m" to the big-run child process. Like the
// BENCH_stream baseline, each big single run executes in a re-exec of the
// test binary: a 10⁷-job run is sensitive to allocator fragmentation, and
// an in-process measurement after any other section runs ~10-15% slow —
// enough to blur the < 1s gate.
const bigRunChildEnv = "RRNORM_BIGRUN_CHILD"

// TestEngineBigRunChild is the child's body: warm-up plus one timed
// steady-state run of fast RR at the size in the env spec. It only
// executes under the env gate; in the normal suite it is a skip.
func TestEngineBigRunChild(t *testing.T) {
	spec := os.Getenv(bigRunChildEnv)
	if spec == "" {
		t.Skip("child-process body for TestWriteEngineBenchBaseline")
	}
	var n, m int
	if _, err := fmt.Sscanf(spec, "%d %d", &n, &m); err != nil {
		t.Fatalf("bad %s spec %q: %v", bigRunChildEnv, spec, err)
	}
	in := engineGridInstance(n, m)
	ws := core.NewWorkspace()
	p := policy.NewRR()
	opts := core.Options{Machines: m, Speed: 1, Engine: core.EngineFast}
	if _, err := fast.RunWS(in, p, opts, ws); err != nil {
		t.Fatal(err)
	}
	runtime.GC() // settle warm-up garbage so the timed runs are pure engine
	// Best of five steady-state runs: the wall is a capability number
	// ("this engine completes 10⁷ jobs in under a second"), and on shared
	// hosts a single sample carries ±10-15% neighbor noise in one
	// direction only — slower. Five samples make the min a stable estimate
	// of the uncontended wall where three still wobbled with the host.
	var wall time.Duration
	var allocs int64
	for i := 0; i < 5; i++ {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		if _, err := fast.RunWS(in, p, opts, ws); err != nil {
			t.Fatal(err)
		}
		d := time.Since(t0)
		runtime.ReadMemStats(&ms1)
		if i == 0 || d < wall {
			wall = d
			allocs = int64(ms1.Mallocs - ms0.Mallocs)
		}
	}
	row := engineBigRun{
		Policy:    "RR",
		N:         n,
		Machines:  m,
		WallSec:   wall.Seconds(),
		NsPerJob:  float64(wall.Nanoseconds()) / float64(n),
		AllocsRun: allocs,
	}
	out, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BIGRUN_RESULT %s", out)
}

// writeBigRuns fills the BigRuns and Sharded sections: single timed runs
// (one child process per row, fresh heap each) at the scales the grid
// cannot afford to repeat, plus the serial-vs-sharded SRPT comparison.
// Instances are generated per machine count — a workload whose arrival
// rate saturates m=8 overloads a single machine and would measure the
// overload regime, not the engine.
func writeBigRuns(t *testing.T, base *engineBenchBaseline) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1_000_000, 10_000_000} {
		for _, m := range []int{1, 8} {
			cmd := exec.Command(exe, "-test.run", "^TestEngineBigRunChild$", "-test.v")
			cmd.Env = append(os.Environ(), fmt.Sprintf("%s=%d %d", bigRunChildEnv, n, m), "WRITE_BENCH=")
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("big-run child n=%d m=%d failed: %v\n%s", n, m, err, out)
			}
			_, after, found := strings.Cut(string(out), "BIGRUN_RESULT ")
			if !found {
				t.Fatalf("big-run child n=%d m=%d printed no BIGRUN_RESULT:\n%s", n, m, out)
			}
			line := after
			if i := strings.IndexByte(line, '\n'); i >= 0 {
				line = line[:i]
			}
			var row engineBigRun
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				t.Fatalf("big-run child n=%d m=%d: %v", n, m, err)
			}
			base.BigRuns = append(base.BigRuns, row)
			t.Logf("RR n=%d m=%d: %.3fs single run (%.1f ns/job, %d allocs)",
				n, m, row.WallSec, row.NsPerJob, row.AllocsRun)
			if n == 10_000_000 && row.WallSec >= 1 {
				t.Errorf("RR n=1e7 m=%d: %.3fs single run, gate is < 1s", m, row.WallSec)
			}
			if row.AllocsRun > 0 {
				t.Errorf("RR n=%d m=%d: %d allocs in a steady-state run, budget is 0", n, m, row.AllocsRun)
			}
		}
	}

	bigWS := core.NewWorkspace()
	// Sharded SRPT: serial m=8 vs the machine-sharded runner. The ≥3x gate
	// needs machines to run shards on; it stays informational below
	// GOMAXPROCS 4 (single-CPU hosts record speedup ≈ 1).
	const n, m = 1_000_000, 8
	in := engineGridInstance(n, m)
	sp := policy.NewSRPT()
	opts := core.Options{Machines: m, Speed: 1, Engine: core.EngineFast}
	if _, err := fast.RunWS(in, sp, opts, bigWS); err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	if _, err := fast.RunWS(in, sp, opts, bigWS); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(t0)
	workers := runtime.GOMAXPROCS(0)
	if _, err := batch.RunSharded(context.Background(), in, "SRPT", opts, workers, nil, nil); err != nil {
		t.Fatal(err)
	}
	t0 = time.Now()
	if _, err := batch.RunSharded(context.Background(), in, "SRPT", opts, workers, nil, nil); err != nil {
		t.Fatal(err)
	}
	sharded := time.Since(t0)
	row := engineShardRun{
		N:           n,
		Machines:    m,
		Workers:     workers,
		SerialSec:   serial.Seconds(),
		ShardedSec:  sharded.Seconds(),
		Speedup:     float64(serial) / float64(sharded),
		GateArmed:   workers >= 4,
		GateSpeedup: 3.0,
	}
	base.Sharded = append(base.Sharded, row)
	t.Logf("sharded SRPT n=%d m=%d workers=%d: serial %.3fs vs sharded %.3fs: %.2fx (gate armed: %v)",
		n, m, workers, row.SerialSec, row.ShardedSec, row.Speedup, row.GateArmed)
	if row.GateArmed && row.Speedup < row.GateSpeedup {
		t.Errorf("sharded SRPT n=1e6 m=8: %.2fx with %d workers, gate is ≥%.1fx", row.Speedup, workers, row.GateSpeedup)
	}
}

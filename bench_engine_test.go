package rrnorm_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// --- allocation budget (tier-1 + CI bench smoke) -----------------------------

// TestEngineAllocBudget pins the engine hot path's allocation budget: after
// one warm-up run on a workspace, a simulation must perform zero heap
// allocations per run. This is the regression harness behind the workspace
// layer (DESIGN.md §12) — any closure that starts escaping, any buffer that
// stops being reused, shows up here as a hard failure, in `go test ./...`
// and in the CI bench smoke job alike.
func TestEngineAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is disturbed by -short test interleavings")
	}
	in := workload.PoissonLoad(stats.NewRNG(7), 2000, 2, 0.9, workload.ExpSizes{M: 1})
	cases := []struct {
		name   string
		pol    core.Policy
		engine core.EngineKind
	}{
		{"fast/RR", policy.NewRR(), core.EngineFast},
		{"fast/SRPT", policy.NewSRPT(), core.EngineFast},
		{"fast/SJF", policy.NewSJF(), core.EngineFast},
		{"fast/FCFS", policy.NewFCFS(), core.EngineFast},
		{"reference/RR", policy.NewRR(), core.EngineReference},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws := core.NewWorkspace()
			opts := core.Options{Machines: 2, Speed: 1, Engine: tc.engine}
			run := func() {
				if _, err := fast.RunWS(in, tc.pol, opts, ws); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm-up: grows the buffers, attaches the engine scratch
			if allocs := testing.AllocsPerRun(10, run); allocs > 0 {
				t.Errorf("%s: %v allocs/run in steady state, want 0", tc.name, allocs)
			}
		})
	}
}

// --- benchmark grid ----------------------------------------------------------

// engineGridCell is one point of the committed BENCH_engine.json grid.
type engineGridCell struct {
	Policy      string  `json:"policy"`
	N           int     `json:"n"`
	Machines    int     `json:"machines"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

var engineGridNs = []int{1_000, 10_000, 100_000}
var engineGridMs = []int{1, 8}

func engineGridInstance(n, m int) *core.Instance {
	return workload.PoissonLoad(stats.NewRNG(1), n, m, 0.9, workload.ExpSizes{M: 1})
}

func benchEngineCell(b *testing.B, pol string, n, m int, ws *core.Workspace) {
	b.Helper()
	in := engineGridInstance(n, m)
	p, err := policy.New(pol)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Machines: m, Speed: 1, Engine: core.EngineFast}
	if _, err := fast.RunWS(in, p, opts, ws); err != nil {
		b.Fatal(err) // warm-up
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fast.RunWS(in, p, opts, ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "jobs/op")
}

// BenchmarkEngineWorkspaceGrid is the RR/SRPT × n × m grid recorded in
// BENCH_engine.json (`make bench-engine` refreshes it). Steady state with
// workspace reuse: 0 allocs/op across the whole grid.
func BenchmarkEngineWorkspaceGrid(b *testing.B) {
	ws := core.NewWorkspace()
	for _, pol := range []string{"RR", "SRPT"} {
		for _, n := range engineGridNs {
			for _, m := range engineGridMs {
				b.Run(fmt.Sprintf("%s/n=%d/m=%d", pol, n, m), func(b *testing.B) {
					benchEngineCell(b, pol, n, m, ws)
				})
			}
		}
	}
}

// --- committed baseline (make bench-engine) ----------------------------------

// engineBenchBaseline is the schema of BENCH_engine.json.
type engineBenchBaseline struct {
	Benchmark string           `json:"benchmark"`
	GoMaxProc int              `json:"gomaxprocs"`
	Grid      []engineGridCell `json:"grid"`
	// WorkspaceVsFresh records the n=10000 single-machine RR/SRPT runs with
	// and without workspace reuse (fresh still benefits from this PR's
	// closure-free engine rewrite; reuse additionally drops allocs/op to 0).
	WorkspaceVsFresh map[string]engineWsVsFresh `json:"workspace_vs_fresh_n10000"`
	// VsSeed compares the workspace-reuse fast RR path against the
	// pre-workspace engine (seed commit), measured on the same machine.
	// Improvement = 1 − current/seed ns/op; the acceptance floor at
	// n=10000 is 0.25.
	VsSeed map[string]engineVsSeed `json:"vs_seed_fast_rr"`
}

// seedFastRRNsPerOp is BenchmarkEngineFastVsReference/n=<n>/fast on the
// seed commit (54df534, before the workspace layer and the closure-free
// engine rewrite), measured on the reference machine at -benchtime=500x.
// Refresh these alongside BENCH_engine.json when re-baselining on new
// hardware.
var seedFastRRNsPerOp = map[int]float64{
	10_000:  1_624_384,
	100_000: 18_426_619,
}

type engineVsSeed struct {
	SeedNsPerOp    float64 `json:"seed_ns_per_op"`
	CurrentNsPerOp float64 `json:"current_ns_per_op"`
	Improvement    float64 `json:"improvement"`
}

type engineWsVsFresh struct {
	FreshNsPerOp    float64 `json:"fresh_ns_per_op"`
	WsNsPerOp       float64 `json:"ws_ns_per_op"`
	FreshAllocsPerO int64   `json:"fresh_allocs_per_op"`
	WsAllocsPerOp   int64   `json:"ws_allocs_per_op"`
	Improvement     float64 `json:"improvement"`
}

// TestWriteEngineBenchBaseline rewrites BENCH_engine.json. Gated behind
// WRITE_BENCH=1 (`make bench-engine`) because it runs the full benchmark
// grid; it also enforces the PR's acceptance floor — ≥25% ns/op improvement
// over the seed engine for fast RR at n=10000 and 0 allocs/op across the
// grid — so the committed numbers can never drift below what the README
// claims.
func TestWriteEngineBenchBaseline(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to rewrite BENCH_engine.json")
	}
	base := engineBenchBaseline{
		Benchmark:        "BenchmarkEngineWorkspaceGrid",
		GoMaxProc:        runtime.GOMAXPROCS(0),
		WorkspaceVsFresh: map[string]engineWsVsFresh{},
	}
	ws := core.NewWorkspace()
	for _, pol := range []string{"RR", "SRPT"} {
		for _, n := range engineGridNs {
			for _, m := range engineGridMs {
				r := testing.Benchmark(func(b *testing.B) {
					benchEngineCell(b, pol, n, m, ws)
				})
				cell := engineGridCell{
					Policy:      pol,
					N:           n,
					Machines:    m,
					NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
					AllocsPerOp: r.AllocsPerOp(),
					BytesPerOp:  r.AllocedBytesPerOp(),
				}
				base.Grid = append(base.Grid, cell)
				t.Logf("%s n=%d m=%d: %.0f ns/op, %d allocs/op, %d B/op",
					pol, n, m, cell.NsPerOp, cell.AllocsPerOp, cell.BytesPerOp)
				if cell.AllocsPerOp > 0 {
					t.Errorf("%s n=%d m=%d: %d allocs/op, budget is 0", pol, n, m, cell.AllocsPerOp)
				}
			}
		}
	}
	for _, pol := range []string{"RR", "SRPT"} {
		in := engineGridInstance(10_000, 1)
		p, err := policy.New(pol)
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}
		fresh := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := fast.Run(in, p, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		reused := testing.Benchmark(func(b *testing.B) {
			if _, err := fast.RunWS(in, p, opts, ws); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fast.RunWS(in, p, opts, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		freshNs := float64(fresh.T.Nanoseconds()) / float64(fresh.N)
		wsNs := float64(reused.T.Nanoseconds()) / float64(reused.N)
		imp := 1 - wsNs/freshNs
		base.WorkspaceVsFresh[pol] = engineWsVsFresh{
			FreshNsPerOp:    freshNs,
			WsNsPerOp:       wsNs,
			FreshAllocsPerO: fresh.AllocsPerOp(),
			WsAllocsPerOp:   reused.AllocsPerOp(),
			Improvement:     imp,
		}
		t.Logf("%s n=10000: fresh %.0f ns/op (%d allocs/op) vs workspace %.0f ns/op (%d allocs/op): %.1f%% faster",
			pol, freshNs, fresh.AllocsPerOp(), wsNs, reused.AllocsPerOp(), imp*100)
		if reused.AllocsPerOp() > 0 {
			t.Errorf("%s n=10000: %d allocs/op with workspace reuse, budget is 0", pol, reused.AllocsPerOp())
		}
	}
	// Acceptance floor: the workspace-reuse fast RR path must beat the
	// seed engine by ≥25% ns/op at n=10000 (same instance as the seed
	// measurement: BenchmarkEngineFastVsReference's 0.98-load workload).
	base.VsSeed = map[string]engineVsSeed{}
	for _, n := range []int{10_000, 100_000} {
		in := workload.PoissonLoad(stats.NewRNG(1), n, 1, 0.98, workload.ExpSizes{M: 1})
		opts := core.Options{Machines: 1, Speed: 1, Engine: core.EngineFast}
		p := policy.NewRR()
		r := testing.Benchmark(func(b *testing.B) {
			if _, err := fast.RunWS(in, p, opts, ws); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fast.RunWS(in, p, opts, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
		cur := float64(r.T.Nanoseconds()) / float64(r.N)
		imp := 1 - cur/seedFastRRNsPerOp[n]
		base.VsSeed[fmt.Sprintf("n=%d", n)] = engineVsSeed{
			SeedNsPerOp:    seedFastRRNsPerOp[n],
			CurrentNsPerOp: cur,
			Improvement:    imp,
		}
		t.Logf("fast RR n=%d: seed %.0f ns/op vs current %.0f ns/op: %.1f%% faster",
			n, seedFastRRNsPerOp[n], cur, imp*100)
		if n == 10_000 && imp < 0.25 {
			t.Errorf("fast RR n=10000: %.1f%% ns/op improvement vs seed, acceptance floor is 25%%", imp*100)
		}
	}
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_engine.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_engine.json")
}

package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rrnorm/internal/hunt"
)

// TestRunDeterministicReport: the CLI's stdout is byte-identical across two
// runs with the same flags — the property `make hunt-smoke` checks in CI.
func TestRunDeterministicReport(t *testing.T) {
	args := []string{"-k", "2", "-seed", "7", "-budget", "120", "-pop", "12", "-maxjobs", "36", "-shrink-budget", "60"}
	var a, b, discard bytes.Buffer
	if err := run(args, &a, &discard); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b, &discard); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("reports differ:\n--- first\n%s\n--- second\n%s", a.String(), b.String())
	}
	for _, want := range []string{"hunt: k=2", "seed-best:", "champion:", "shrunk:", "anomalies: 0", "witness jobs"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("report missing %q:\n%s", want, a.String())
		}
	}
}

// TestRunWritesCorpusEntry: -out commits a loadable, replayable entry.
func TestRunWritesCorpusEntry(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	var out, discard bytes.Buffer
	args := []string{"-k", "2", "-seed", "3", "-budget", "60", "-maxjobs", "30", "-shrink-budget", "40", "-out", dir, "-name", "smoke"}
	if err := run(args, &out, &discard); err != nil {
		t.Fatal(err)
	}
	entries, err := hunt.LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "smoke" || entries[0].K != 2 || entries[0].Seed != 3 {
		t.Fatalf("unexpected corpus: %+v", entries)
	}
	if !strings.Contains(out.String(), "corpus: wrote") {
		t.Errorf("stdout does not mention the corpus write:\n%s", out.String())
	}
}

// TestRunBadFlags: flag errors surface as errors, not panics or exits.
func TestRunBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-budget", "not-a-number"}, &out, &errBuf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

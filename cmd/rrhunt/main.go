// Command rrhunt runs the adversarial ratio hunter: a seeded, guided
// search for instances maximizing RR's empirical competitive ratio
// Σ F^k / LB against the certified LP lower bound, with the champion
// delta-debugged to a minimal witness and optionally committed to a
// regression corpus. The report on stdout is byte-deterministic for fixed
// flags — two runs with the same seed produce identical bytes, which CI's
// hunt-smoke job pins.
//
// Examples:
//
//	rrhunt -k 2 -seed 1 -budget 2000
//	rrhunt -k 3 -m 2 -speed 1.5 -budget 500 -out testdata/corpus -name k3m2-champion
//	rrhunt -k 2 -budget 400 -cert -v
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rrnorm/internal/hunt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "rrhunt:", err)
		os.Exit(1)
	}
}

// run is main, parameterized for tests: flags in, deterministic report out.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("rrhunt", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		k       = fs.Int("k", 2, "ℓk-norm exponent of the objective")
		m       = fs.Int("m", 1, "machines")
		speed   = fs.Float64("speed", 1, "RR resource-augmentation speed (lower bound stays at unit speed)")
		speeds  = fs.String("speeds", "", "comma-separated per-machine relative speeds for the RR side, e.g. 1,2 (empty: identical; -m defaults to the count)")
		pCost   = fs.Float64("preempt-cost", 0, "per-preemption work surcharge on the RR side")
		seed    = fs.Uint64("seed", 1, "search seed; equal seeds give byte-identical reports")
		budget  = fs.Int("budget", 400, "candidate evaluation budget, seeds included")
		pop     = fs.Int("pop", 16, "evolutionary population size")
		maxJobs = fs.Int("maxjobs", 40, "candidate instance size cap")
		shrinkB = fs.Int("shrink-budget", 400, "shrinker evaluation budget (negative disables shrinking)")
		tol     = fs.Float64("tol", 1e-3, "shrinker relative ratio tolerance")
		out     = fs.String("out", "", "corpus directory to write the shrunk witness to (empty: don't write)")
		name    = fs.String("name", "", "corpus entry name (default hunt-k<k>-m<m>-s<seed>)")
		cert    = fs.Bool("cert", true, "verify the dual-fitting certificate on the champion (anomaly monitors)")
		verbose = fs.Bool("v", false, "log search progress to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var machineSpeeds []float64
	if strings.TrimSpace(*speeds) != "" {
		for _, part := range strings.Split(*speeds, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("-speeds: bad entry %q: %w", part, err)
			}
			machineSpeeds = append(machineSpeeds, f)
		}
		mSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "m" {
				mSet = true
			}
		})
		if !mSet {
			*m = len(machineSpeeds)
		} else if *m != len(machineSpeeds) {
			return fmt.Errorf("-speeds has %d entries but -m is %d", len(machineSpeeds), *m)
		}
	}

	o := hunt.Options{
		Params: hunt.Params{
			K:             *k,
			Machines:      *m,
			Speed:         *speed,
			MachineSpeeds: machineSpeeds,
			PreemptCost:   *pCost,
			MaxJobs:       *maxJobs,
		},
		Seed:         *seed,
		Budget:       *budget,
		Population:   *pop,
		ShrinkBudget: *shrinkB,
		ShrinkTol:    *tol,
	}
	if *cert {
		o.Monitor = hunt.NewMonitor(o.Params)
	}
	if *verbose {
		o.Log = stderr
	}

	rep, err := hunt.Run(context.Background(), o)
	if err != nil {
		return err
	}
	if err := rep.WriteText(stdout); err != nil {
		return err
	}

	if *out != "" {
		entryName := *name
		if entryName == "" {
			entryName = fmt.Sprintf("hunt-k%d-m%d-s%d", *k, *m, *seed)
		}
		e, err := hunt.FromReport(rep, entryName)
		if err != nil {
			return err
		}
		path, err := hunt.WriteEntry(*out, e)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "corpus: wrote %s\n", path)
	}

	if len(rep.Anomalies) > 0 {
		return fmt.Errorf("%d anomalies detected — see report", len(rep.Anomalies))
	}
	return nil
}

// Command rrtrace generates, converts, inspects and visualizes workload
// traces.
//
// Subcommands:
//
//	rrtrace gen -workload poisson:n=100 -o jobs.csv [-json]
//	rrtrace describe -workload trace:path=jobs.csv
//	rrtrace gantt -workload cascade:levels=5 -policy RR -speed 1 -width 80
//	rrtrace tail -workload poisson:n=100 -policy RR        (live JSONL event stream)
//	rrtrace convert -in jobs.csv -o jobs.json   (CSV/SWF → CSV/JSON by extension)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/metrics"
	"rrnorm/internal/polspec"
	"rrnorm/internal/trace"
	"rrnorm/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "describe":
		err = cmdDescribe(os.Args[2:])
	case "gantt":
		err = cmdGantt(os.Args[2:])
	case "tail":
		err = cmdTail(os.Args[2:])
	case "machines":
		err = cmdMachines(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rrtrace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rrtrace <gen|describe|gantt|tail|machines|convert> [flags]")
	os.Exit(2)
}

// cmdTail simulates a policy and streams the run's lifecycle as JSONL —
// one record per arrival, rate-change epoch and completion, plus a final
// summary — produced by a trace.Observer attached to the engine's event
// taps. Nothing is buffered beyond one bufio.Writer: the stream is written
// as the schedule unfolds, so it works at sizes where a recorded Segment
// timeline would not fit in memory.
func cmdTail(args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	spec := fs.String("workload", "poisson:n=100", "workload spec")
	seed := fs.Uint64("seed", 1, "RNG seed")
	pol := fs.String("policy", "RR", "policy name")
	m := fs.Int("m", 1, "machines")
	speed := fs.Float64("speed", 1, "speed")
	engine := fs.String("engine", "auto", "simulation engine: auto, reference or fast")
	noEpochs := fs.Bool("no-epochs", false, "omit epoch records (arrivals, completions and the summary only)")
	out := fs.String("o", "", "output path (empty = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		return err
	}
	p, err := polspec.New(*pol)
	if err != nil {
		return err
	}
	eng, err := core.ParseEngineKind(*engine)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	o := trace.NewObserver(w)
	o.SkipEpochs = *noEpochs
	if _, err := fast.Run(in, p, core.Options{Machines: *m, Speed: *speed, Engine: eng, Observer: o}); err != nil {
		return err
	}
	return o.Err()
}

// cmdMachines simulates a policy and prints the explicit per-machine
// schedule (McNaughton assignment of the rate-based schedule) as CSV:
// machine,job_id,start,end.
func cmdMachines(args []string) error {
	fs := flag.NewFlagSet("machines", flag.ExitOnError)
	spec := fs.String("workload", "staircase:n=5", "workload spec")
	seed := fs.Uint64("seed", 1, "RNG seed")
	pol := fs.String("policy", "RR", "policy name")
	m := fs.Int("m", 2, "machines")
	speed := fs.Float64("speed", 1, "speed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		return err
	}
	p, err := polspec.New(*pol)
	if err != nil {
		return err
	}
	res, err := core.Run(in, p, core.Options{Machines: *m, Speed: *speed, RecordSegments: true})
	if err != nil {
		return err
	}
	machines, err := core.AssignMachines(res)
	if err != nil {
		return err
	}
	if err := core.ValidateAssignment(res, machines); err != nil {
		return err
	}
	fmt.Println("machine,job_id,start,end")
	for _, ms := range machines {
		for _, s := range ms.Slices {
			fmt.Printf("%d,%d,%.9g,%.9g\n", ms.Machine, res.Jobs[s.Job].ID, s.Start, s.End)
		}
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	spec := fs.String("workload", "poisson:n=100", "workload spec")
	seed := fs.Uint64("seed", 1, "RNG seed")
	out := fs.String("o", "", "output path (.csv or .json; empty = stdout CSV)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		return err
	}
	return writeInstance(in, *out)
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	spec := fs.String("workload", "", "workload spec")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		return err
	}
	fmt.Println(workload.Describe(in))
	fmt.Println(workload.Characterize(in))
	sizes := make([]float64, in.N())
	for i, j := range in.Jobs {
		sizes[i] = j.Size
	}
	fmt.Printf("sizes: min=%.4g p50=%.4g p99=%.4g max=%.4g\n",
		metrics.Min(sizes), metrics.Percentile(sizes, 50),
		metrics.Percentile(sizes, 99), metrics.Max(sizes))
	return nil
}

func cmdGantt(args []string) error {
	fs := flag.NewFlagSet("gantt", flag.ExitOnError)
	spec := fs.String("workload", "staircase:n=6", "workload spec")
	seed := fs.Uint64("seed", 1, "RNG seed")
	pol := fs.String("policy", "RR", "policy name")
	m := fs.Int("m", 1, "machines")
	speed := fs.Float64("speed", 1, "speed")
	width := fs.Int("width", 80, "chart width in columns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		return err
	}
	p, err := polspec.New(*pol)
	if err != nil {
		return err
	}
	// Streaming chart: a GanttObserver folds each epoch into fixed-width
	// buckets as the run unfolds (O(jobs·width) memory), instead of
	// recording the full Segment timeline and rendering it afterwards.
	g := core.NewGanttObserver(*width)
	if _, err := core.Run(in, p, core.Options{Machines: *m, Speed: *speed, Observer: g}); err != nil {
		return err
	}
	fmt.Print(g.Render())
	return nil
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	inPath := fs.String("in", "", "input path (.csv, .json or .swf)")
	out := fs.String("o", "", "output path (.csv or .json; empty = stdout CSV)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("convert needs -in")
	}
	f, err := os.Open(*inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var in *core.Instance
	switch strings.ToLower(filepath.Ext(*inPath)) {
	case ".json":
		in, err = workload.ReadJSON(f)
	case ".swf":
		in, err = workload.ReadSWF(f, workload.SWFOptions{})
	default:
		in, err = workload.ReadCSV(f)
	}
	if err != nil {
		return err
	}
	return writeInstance(in, *out)
}

func writeInstance(in *core.Instance, out string) error {
	if out == "" {
		return workload.WriteCSV(os.Stdout, in)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.ToLower(filepath.Ext(out)) == ".json" {
		return workload.WriteJSON(f, in)
	}
	return workload.WriteCSV(f, in)
}

// Command rrserve serves the simulator over HTTP: POST /v1/simulate and
// POST /v1/compare run workloads through the library with a bounded worker
// pool, an LRU result cache with in-flight dedup, per-request deadlines and
// graceful drain on SIGTERM/SIGINT; GET /v1/policies, /metrics and
// /healthz round out the surface (see DESIGN.md §10 and the README
// quick-start).
//
// Examples:
//
//	rrserve -addr :8080
//	curl -s localhost:8080/v1/policies
//	curl -s -X POST localhost:8080/v1/simulate -d '{
//	  "spec": "poisson:n=200,load=0.9,dist=exp", "seed": 1,
//	  "policy": "RR", "machines": 1, "speed": 2}'
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rrnorm/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "admission-queue capacity; beyond it requests get 429")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request simulation deadline (504 past it)")
		cache   = flag.Int("cache", 1024, "result-cache capacity in entries")
		pprofOn = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		monitor = flag.Bool("monitor", false, "attach a streaming invariant monitor to every run; findings count in /metrics as \"anomalies\"")
		drain   = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget on SIGTERM/SIGINT")
	)
	flag.Parse()

	s := serve.NewServer(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		RequestTimeout:   *timeout,
		CacheEntries:     *cache,
		EnablePprof:      *pprofOn,
		MonitorAnomalies: *monitor,
	})
	// One server per process, so the global expvar page may carry its vars.
	expvar.Publish("rrserve", s.Vars())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGTERM, syscall.SIGINT)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := <-stop
		log.Printf("rrserve: %v — draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("rrserve: shutdown: %v", err)
		}
		s.Close() // drain queued simulations after the listener stops
	}()

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	log.Printf("rrserve: listening on %s (workers=%d queue=%d cache=%d timeout=%v pprof=%v)",
		*addr, effWorkers, *queue, *cache, *timeout, *pprofOn)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "rrserve: %v\n", err)
		os.Exit(1)
	}
	<-done
	log.Printf("rrserve: drained, bye")
}

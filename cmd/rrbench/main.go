// Command rrbench regenerates the experiment suite E1–E10 (the numerical
// counterparts of the paper's claims — see DESIGN.md §3), rendering tables
// to stdout and CSV series to -out.
//
// Examples:
//
//	rrbench                     # full suite
//	rrbench -exp E2 -out results
//	rrbench -quick              # reduced grids (what the tests run)
//	rrbench -exp E2 -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"rrnorm/internal/core"
	"rrnorm/internal/exp"
	"rrnorm/internal/par"
)

func main() {
	var (
		id         = flag.String("exp", "all", "experiment ID (E1..E19) or 'all'")
		out        = flag.String("out", "", "directory for CSV output (empty = none)")
		quick      = flag.Bool("quick", false, "reduced instance sizes and grids")
		seed       = flag.Uint64("seed", 42, "workload RNG seed")
		html       = flag.String("html", "", "also write a self-contained HTML report to this path")
		parallel   = flag.Bool("parallel", false, "run experiments concurrently (results still print in order)")
		workers    = flag.Int("workers", 0, "worker cap for -parallel (0 = GOMAXPROCS)")
		engine     = flag.String("engine", "auto", "simulation engine: auto, reference or fast")
		noSegments = flag.Bool("no-segments", false, "fail any experiment that records Segments: asserts the whole run went through the streaming observer pipeline")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	)
	flag.Parse()
	eng, err := core.ParseEngineKind(*engine)
	if err != nil {
		fatal(err)
	}
	cfg := exp.Config{Seed: *seed, Quick: *quick, OutDir: *out, Engine: eng, ForbidSegments: *noSegments}

	var exps []exp.Experiment
	if *id == "all" {
		exps = exp.All()
	} else {
		e, err := exp.ByID(*id)
		if err != nil {
			fatal(err)
		}
		exps = []exp.Experiment{e}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	type outcome struct {
		tables  []*exp.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(exps))
	runOne := func(i int) error {
		start := time.Now()
		tables, err := exps[i].Run(cfg)
		results[i] = outcome{tables, err, time.Since(start)}
		return nil // keep running the rest even after a failure, as before
	}
	if *parallel {
		// Experiments are independent and deterministic per Config, so fan
		// them out on a bounded pool (the sweeps inside already batch their
		// simulation points over per-worker workspaces); rendering below
		// stays in suite order.
		if err := par.ForEach(len(exps), *workers, runOne); err != nil {
			fatal(err)
		}
	} else {
		for i := range exps {
			if err := runOne(i); err != nil {
				fatal(err)
			}
		}
	}

	var all []*exp.Table
	for i, e := range exps {
		r := results[i]
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, r.err))
		}
		for _, t := range r.tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *out != "" {
				if err := t.WriteCSV(*out); err != nil {
					fatal(err)
				}
			}
		}
		all = append(all, r.tables...)
		fmt.Printf("[%s finished in %v]\n\n", e.ID, r.elapsed.Round(time.Millisecond))
	}
	if *out != "" {
		fmt.Printf("CSV series written to %s/\n", *out)
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := exp.RenderHTML(f, cfg, all); err != nil {
			fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *html)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}

// Command rrbench regenerates the experiment suite E1–E10 (the numerical
// counterparts of the paper's claims — see DESIGN.md §3), rendering tables
// to stdout and CSV series to -out.
//
// Examples:
//
//	rrbench                     # full suite
//	rrbench -exp E2 -out results
//	rrbench -quick              # reduced grids (what the tests run)
//	rrbench -exp E2 -cpuprofile cpu.out -memprofile mem.out
//
// -n switches to single-run mode: one timed simulation of a Poisson
// workload at that size (scientific notation welcome: -n 1e7), printing
// the wall time and ns/job instead of the experiment tables.
//
//	rrbench -n 1e7 -policy RR -machines 8
//	rrbench -n 1e6 -policy SRPT -machines 8 -sharded -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rrnorm/internal/batch"
	"rrnorm/internal/core"
	"rrnorm/internal/exp"
	"rrnorm/internal/fast"
	"rrnorm/internal/metrics"
	"rrnorm/internal/par"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func main() {
	var (
		id         = flag.String("exp", "all", "experiment ID (E1..E19) or 'all'")
		out        = flag.String("out", "", "directory for CSV output (empty = none)")
		quick      = flag.Bool("quick", false, "reduced instance sizes and grids")
		seed       = flag.Uint64("seed", 42, "workload RNG seed")
		html       = flag.String("html", "", "also write a self-contained HTML report to this path")
		parallel   = flag.Bool("parallel", false, "run experiments concurrently (results still print in order)")
		workers    = flag.Int("workers", 0, "worker cap for -parallel (0 = GOMAXPROCS)")
		engine     = flag.String("engine", "auto", "simulation engine: auto, reference or fast")
		noSegments = flag.Bool("no-segments", false, "fail any experiment that records Segments: asserts the whole run went through the streaming observer pipeline")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
		singleN    = flag.String("n", "", "single-run mode: simulate one Poisson workload of this many jobs (scientific notation ok, e.g. 1e7) and print wall time + ns/job")
		polName    = flag.String("policy", "RR", "policy for -n single-run mode")
		machines   = flag.Int("machines", 1, "machine count for -n single-run mode (defaults to len(-speeds) when that is set)")
		speeds     = flag.String("speeds", "", "-n mode: comma-separated per-machine relative speeds, e.g. 1,2,4")
		pCost      = flag.Float64("preempt-cost", 0, "-n mode: extra work charged to a job each time it is preempted")
		sharded    = flag.Bool("sharded", false, "-n mode: run through the machine-sharded parallel runner (separable policies, -workers workers)")
	)
	flag.Parse()
	eng, err := core.ParseEngineKind(*engine)
	if err != nil {
		fatal(err)
	}
	if *singleN != "" {
		mm, err := machineModel(*speeds, *pCost, machines)
		if err != nil {
			fatal(err)
		}
		runSingle(*singleN, *polName, *machines, mm, *seed, eng, *sharded, *workers, *cpuprofile)
		return
	}
	cfg := exp.Config{Seed: *seed, Quick: *quick, OutDir: *out, Engine: eng, ForbidSegments: *noSegments}

	var exps []exp.Experiment
	if *id == "all" {
		exps = exp.All()
	} else {
		e, err := exp.ByID(*id)
		if err != nil {
			fatal(err)
		}
		exps = []exp.Experiment{e}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	type outcome struct {
		tables  []*exp.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(exps))
	runOne := func(i int) error {
		start := time.Now()
		tables, err := exps[i].Run(cfg)
		results[i] = outcome{tables, err, time.Since(start)}
		return nil // keep running the rest even after a failure, as before
	}
	if *parallel {
		// Experiments are independent and deterministic per Config, so fan
		// them out on a bounded pool (the sweeps inside already batch their
		// simulation points over per-worker workspaces); rendering below
		// stays in suite order.
		if err := par.ForEach(len(exps), *workers, runOne); err != nil {
			fatal(err)
		}
	} else {
		for i := range exps {
			if err := runOne(i); err != nil {
				fatal(err)
			}
		}
	}

	var all []*exp.Table
	for i, e := range exps {
		r := results[i]
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, r.err))
		}
		for _, t := range r.tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *out != "" {
				if err := t.WriteCSV(*out); err != nil {
					fatal(err)
				}
			}
		}
		all = append(all, r.tables...)
		fmt.Printf("[%s finished in %v]\n\n", e.ID, r.elapsed.Round(time.Millisecond))
	}
	if *out != "" {
		fmt.Printf("CSV series written to %s/\n", *out)
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := exp.RenderHTML(f, cfg, all); err != nil {
			fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *html)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows retained allocations
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// parseJobCount parses -n, accepting scientific notation (1e7) as well as
// plain integers.
func parseJobCount(s string) (int, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("-n %q: %w", s, err)
	}
	if !(f >= 1) || f > 1e9 || f != math.Trunc(f) {
		return 0, fmt.Errorf("-n %q: want an integer job count in [1, 1e9]", s)
	}
	return int(f), nil
}

// runSingle is -n mode: generate one Poisson workload (load 0.9, exp
// sizes), simulate it twice — a cold run that pays workspace growth, then
// a steady-state run on the warmed buffers — and print both walls with
// per-job costs. With -sharded the run goes through the machine-sharded
// parallel runner and the per-shard streaming norms are merged in shard
// order (byte-identical at any -workers count).
func runSingle(nStr, polName string, m int, mm core.Machines, seed uint64, eng core.EngineKind, sharded bool, workers int, cpuprofile string) {
	n, err := parseJobCount(nStr)
	if err != nil {
		fatal(err)
	}
	if m < 1 {
		fatal(fmt.Errorf("-machines %d: want ≥ 1", m))
	}
	if sharded && !mm.Default() {
		fatal(fmt.Errorf("-sharded shards identical machines; it is incompatible with -speeds/-preempt-cost"))
	}
	fmt.Printf("single run: %s n=%.3g m=%d (poisson load 0.9, exp sizes, seed %d)\n",
		polName, float64(n), m, seed)
	// Echo the full machine config so a pasted report names the exact model
	// the numbers were measured under.
	if mm.Heterogeneous() {
		total := 0.0
		for _, s := range mm.Speeds {
			total += s
		}
		fmt.Printf("machines: m=%d speeds=%v total_speed=%.6g preempt_cost=%g\n", m, mm.Speeds, total, mm.PreemptCost)
	} else {
		fmt.Printf("machines: m=%d identical unit speeds preempt_cost=%g\n", m, mm.PreemptCost)
	}
	in := workload.PoissonLoad(stats.NewRNG(seed), n, m, 0.9, workload.ExpSizes{M: 1})

	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := core.Options{Machines: m, Speed: 1, Engine: eng, MachineModel: mm}
	ws := core.NewWorkspace()
	sns := make([]*metrics.StreamNorm, m)
	run := func() (*core.Result, *metrics.StreamNorm, time.Duration) {
		if sharded {
			obsFor := func(s int) core.Observer {
				sns[s] = metrics.NewStreamNorm(1, 2, 3)
				return sns[s]
			}
			t0 := time.Now()
			res, err := batch.RunSharded(context.Background(), in, polName, opts, workers, ws, obsFor)
			wall := time.Since(t0)
			if err != nil {
				fatal(err)
			}
			merged := metrics.NewStreamNorm(1, 2, 3)
			for _, sn := range sns {
				merged.Merge(sn)
			}
			return res, merged, wall
		}
		p, err := policy.New(polName)
		if err != nil {
			fatal(err)
		}
		sn := metrics.NewStreamNorm(1, 2, 3)
		o := opts
		o.Observer = sn
		t0 := time.Now()
		res, err := fast.RunWS(in, p, o, ws)
		wall := time.Since(t0)
		if err != nil {
			fatal(err)
		}
		return res, sn, wall
	}

	res, sn, cold := run()
	_, _, steady := run()
	makespan, maxFlow := 0.0, 0.0
	for i, c := range res.Completion {
		makespan = math.Max(makespan, c)
		maxFlow = math.Max(maxFlow, res.Flow[i])
	}
	fmt.Printf("policy=%s n=%d m=%d events=%d makespan=%.6g\n", res.Policy, n, m, res.Events, makespan)
	fmt.Printf("L1=%.6g L2=%.6g L3=%.6g max=%.6g\n", sn.Norm(1), sn.Norm(2), sn.Norm(3), maxFlow)
	fmt.Printf("cold run:   %v (%.1f ns/job, includes workspace growth)\n", cold.Round(time.Microsecond), float64(cold.Nanoseconds())/float64(n))
	fmt.Printf("steady run: %v (%.1f ns/job)\n", steady.Round(time.Microsecond), float64(steady.Nanoseconds())/float64(n))
	if sharded {
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		fmt.Printf("sharded: %d shards over %d workers\n", m, workers)
	}
}

// machineModel assembles the core.Machines model from the -speeds and
// -preempt-cost flags, defaulting an unset -machines to the speed vector's
// length (an explicitly set -machines must match it).
func machineModel(speeds string, preemptCost float64, m *int) (core.Machines, error) {
	var mm core.Machines
	mm.PreemptCost = preemptCost
	if strings.TrimSpace(speeds) == "" {
		return mm, nil
	}
	for _, part := range strings.Split(speeds, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return mm, fmt.Errorf("-speeds: bad entry %q: %w", part, err)
		}
		mm.Speeds = append(mm.Speeds, f)
	}
	mSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "machines" {
			mSet = true
		}
	})
	if !mSet {
		*m = len(mm.Speeds)
	} else if *m != len(mm.Speeds) {
		return mm, fmt.Errorf("-speeds has %d entries but -machines is %d", len(mm.Speeds), *m)
	}
	return mm, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}

// Command rrbench regenerates the experiment suite E1–E10 (the numerical
// counterparts of the paper's claims — see DESIGN.md §3), rendering tables
// to stdout and CSV series to -out.
//
// Examples:
//
//	rrbench                     # full suite
//	rrbench -exp E2 -out results
//	rrbench -quick              # reduced grids (what the tests run)
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"rrnorm/internal/core"
	"rrnorm/internal/exp"
)

func main() {
	var (
		id       = flag.String("exp", "all", "experiment ID (E1..E19) or 'all'")
		out      = flag.String("out", "", "directory for CSV output (empty = none)")
		quick    = flag.Bool("quick", false, "reduced instance sizes and grids")
		seed     = flag.Uint64("seed", 42, "workload RNG seed")
		html     = flag.String("html", "", "also write a self-contained HTML report to this path")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (results still print in order)")
		engine   = flag.String("engine", "auto", "simulation engine: auto, reference or fast")
	)
	flag.Parse()
	eng, err := core.ParseEngineKind(*engine)
	if err != nil {
		fatal(err)
	}
	cfg := exp.Config{Seed: *seed, Quick: *quick, OutDir: *out, Engine: eng}

	var exps []exp.Experiment
	if *id == "all" {
		exps = exp.All()
	} else {
		e, err := exp.ByID(*id)
		if err != nil {
			fatal(err)
		}
		exps = []exp.Experiment{e}
	}
	type outcome struct {
		tables  []*exp.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(exps))
	if *parallel {
		// Experiments are independent and deterministic per Config, so
		// fan them out; rendering below stays in suite order.
		var wg sync.WaitGroup
		for i := range exps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				tables, err := exps[i].Run(cfg)
				results[i] = outcome{tables, err, time.Since(start)}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range exps {
			start := time.Now()
			tables, err := exps[i].Run(cfg)
			results[i] = outcome{tables, err, time.Since(start)}
		}
	}

	var all []*exp.Table
	for i, e := range exps {
		r := results[i]
		if r.err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, r.err))
		}
		for _, t := range r.tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			if *out != "" {
				if err := t.WriteCSV(*out); err != nil {
					fatal(err)
				}
			}
		}
		all = append(all, r.tables...)
		fmt.Printf("[%s finished in %v]\n\n", e.ID, r.elapsed.Round(time.Millisecond))
	}
	if *out != "" {
		fmt.Printf("CSV series written to %s/\n", *out)
	}
	if *html != "" {
		f, err := os.Create(*html)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := exp.RenderHTML(f, cfg, all); err != nil {
			fatal(err)
		}
		fmt.Printf("HTML report written to %s\n", *html)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrbench:", err)
	os.Exit(1)
}

// Command rrlint runs rrnorm's project-specific static analyzers over the
// module and reports invariant violations with file:line:col positions.
//
// Usage:
//
//	rrlint [-C dir] [-json] [-check name,...] [packages]
//
// The module is located by walking up from -C (default ".") to the nearest
// go.mod; the whole module is always analyzed, so the optional package
// argument is accepted only for `go`-tool muscle memory ("./...").
//
// Exit status: 0 when the tree is clean (suppressed diagnostics do not
// count), 1 when any diagnostic is reported, 2 when the module fails to
// load or type-check, or on usage errors.
//
// Suppressions: //rrlint:ignore <check> <reason> on the offending line or
// the line above. The check name must match and the reason is mandatory;
// malformed directives are themselves diagnostics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rrnorm/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir      = flag.String("C", ".", "directory inside the module to lint")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON on stdout")
		checks   = flag.String("check", "", "comma-separated subset of checks to run (default: all)")
		listOnly = flag.Bool("list", false, "list the available checks and exit")
	)
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "rrlint: unsupported package pattern %q (the whole module is always analyzed)\n", arg)
			return 2
		}
	}

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.RunConfig{}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "rrlint: unknown check %q (known: %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			cfg.Analyzers = append(cfg.Analyzers, a)
		}
	}

	res, err := lint.Run(*dir, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "rrlint: %d diagnostic(s), %d suppressed, %d package(s)\n",
			len(res.Diagnostics), res.Suppressed, res.Packages)
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// Command rrlint runs rrnorm's project-specific static analyzers over the
// module and reports invariant violations with file:line:col positions.
//
// Usage:
//
//	rrlint [-C dir] [-json] [-check name,...] [-baseline file] [-write-baseline file] [packages]
//
// The module is located by walking up from -C (default ".") to the nearest
// go.mod; the whole module is always analyzed, so the optional package
// argument is accepted only for `go`-tool muscle memory ("./...").
//
// Exit status: 0 when the tree is clean (suppressed and baselined
// diagnostics do not count), 1 when any diagnostic is reported, 2 when the
// module fails to load or type-check, or on usage errors.
//
// Baselines: -baseline subtracts the exact findings recorded in the given
// file (see `make lint-baseline`), so only new findings fail the build.
// Stale entries — recorded findings that no longer occur — are reported on
// stderr but do not change the exit status; the lint-baseline-check CI step
// is the hard gate that keeps the file current. -write-baseline regenerates
// the file from the current (post-suppression) findings and exits 0.
//
// Suppressions: //rrlint:ignore <check> <reason> on the offending line or
// the line above, or in a function's doc comment to cover the whole body.
// The check name must match and the reason is mandatory; malformed
// directives are themselves diagnostics.
//
// When GITHUB_ACTIONS=true (and -json is not set, so redirected JSON stays
// parseable), each diagnostic is additionally emitted as a
// GitHub workflow error annotation (::error file=...,line=...::...) so
// findings surface inline on the pull-request diff.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"rrnorm/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir           = flag.String("C", ".", "directory inside the module to lint")
		jsonOut       = flag.Bool("json", false, "emit the result as JSON on stdout")
		checks        = flag.String("check", "", "comma-separated subset of checks to run (default: all)")
		listOnly      = flag.Bool("list", false, "list the available checks and exit")
		baselinePath  = flag.String("baseline", "", "subtract the findings recorded in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	)
	flag.Parse()
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "..." {
			fmt.Fprintf(os.Stderr, "rrlint: unsupported package pattern %q (the whole module is always analyzed)\n", arg)
			return 2
		}
	}

	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	cfg := lint.RunConfig{}
	if *checks != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range lint.Analyzers() {
			byName[a.Name] = a
		}
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "rrlint: unknown check %q (known: %s)\n", name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			cfg.Analyzers = append(cfg.Analyzers, a)
		}
	}
	if *baselinePath != "" && *writeBaseline == "" {
		b, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
		cfg.Baseline = b
	}

	res, err := lint.Run(*dir, cfg)
	if err != nil {
		var le *lint.LoadError
		if errors.As(err, &le) {
			// A structured load failure points at the broken line the same
			// way a diagnostic would, instead of an opaque exit-2 string.
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", le)
			if le.Pos != "" && !*jsonOut {
				githubAnnotate(os.Stdout, le.Pos, "load", le.Msg)
			}
			return 2
		}
		fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
		return 2
	}

	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, lint.FormatBaseline(res), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "rrlint: wrote %d finding(s) to %s\n", len(res.Diagnostics), *writeBaseline)
		return 0
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "rrlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Println(d)
		}
		fmt.Fprintf(os.Stderr, "rrlint: %d diagnostic(s), %d suppressed, %d baselined, %d package(s)\n",
			len(res.Diagnostics), res.Suppressed, res.Baselined, res.Packages)
	}
	for _, stale := range res.BaselineStale {
		fmt.Fprintf(os.Stderr, "rrlint: stale baseline entry (already fixed — run `make lint-baseline` to prune): %s\n", stale)
	}
	if !*jsonOut {
		for _, d := range res.Diagnostics {
			githubAnnotate(os.Stdout, fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col), d.Check, d.Message)
		}
	}
	if len(res.Diagnostics) > 0 {
		return 1
	}
	return 0
}

// githubAnnotate emits a GitHub workflow error annotation for a finding at
// a file:line[:col] position when running under GitHub Actions, so findings
// surface inline on the pull-request diff. Messages have %, \r and \n
// escaped per the workflow-command encoding rules.
func githubAnnotate(w *os.File, pos, check, msg string) {
	if os.Getenv("GITHUB_ACTIONS") != "true" {
		return
	}
	parts := strings.SplitN(pos, ":", 3)
	if len(parts) < 2 {
		return
	}
	file, line := parts[0], parts[1]
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	fmt.Fprintf(w, "::error file=%s,line=%s::%s: %s\n", file, line, check, esc.Replace(msg))
}

package main

import (
	"math"
	"testing"
)

func TestParseInts(t *testing.T) {
	got, err := parseInts(" 1, 2,3 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseInts: %v %v", got, err)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("expected error")
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("1.5, 2")
	if err != nil || len(got) != 2 || got[0] != 1.5 {
		t.Fatalf("parseFloats: %v %v", got, err)
	}
	if _, err := parseFloats("zz"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFitExponentDelegates(t *testing.T) {
	b := fitExponent([]float64{1, 10, 100}, []float64{2, 20, 200})
	if math.Abs(b-1) > 1e-9 {
		t.Fatalf("exponent %v", b)
	}
}

// Command rrlb sweeps the adversarial lower-bound families: it measures
// RR's ℓk-norm ratio against the certified LP/2 bound across instance sizes
// and speeds, and fits the per-speed growth exponent — a parameterizable
// version of experiments E2/E9.
//
// Examples:
//
//	rrlb -kind cascade -k 2 -speeds 1,1.2,1.5,2,4 -sizes 4,6,8,10
//	rrlb -kind rrstream -k 1 -theta 0 -speeds 1,2,3
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"rrnorm/internal/core"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func main() {
	var (
		kind   = flag.String("kind", "cascade", "instance family: cascade | rrstream")
		k      = flag.Int("k", 2, "ℓk-norm exponent")
		m      = flag.Int("m", 1, "machines")
		theta  = flag.Float64("theta", 0.8, "cascade per-level overload θ")
		sizesF = flag.String("sizes", "4,5,6,7,8,9,10", "cascade levels or rrstream groups")
		speedF = flag.String("speeds", "1,1.2,1.4,1.6,1.8,2,3,4", "RR speeds")
		plot   = flag.Bool("plot", false, "render an ASCII plot of ratio vs n per speed")
	)
	flag.Parse()

	sizes, err := parseInts(*sizesF)
	if err != nil {
		fatal(err)
	}
	speeds, err := parseFloats(*speedF)
	if err != nil {
		fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "size\tn\tLB")
	for _, s := range speeds {
		fmt.Fprintf(tw, "\ts=%.3g", s)
	}
	fmt.Fprintln(tw)
	ratios := make(map[float64][]float64)
	ns := make([]float64, 0, len(sizes))
	for _, size := range sizes {
		var in *core.Instance
		switch *kind {
		case "cascade":
			in = workload.Cascade(size, *theta)
		case "rrstream":
			in = workload.RRStream(size, *m)
		default:
			fatal(fmt.Errorf("unknown kind %q", *kind))
		}
		lb, err := lp.KPowerLowerBound(in, *m, *k, lp.Options{})
		if err != nil {
			fatal(err)
		}
		ns = append(ns, float64(in.N()))
		fmt.Fprintf(tw, "%d\t%d\t%.4g", size, in.N(), lb.Value)
		for _, s := range speeds {
			res, err := core.Run(in, policy.NewRR(), core.Options{Machines: *m, Speed: s})
			if err != nil {
				fatal(err)
			}
			r := math.Pow(metrics.KthPowerSum(res.Flow, *k)/lb.Value, 1/float64(*k))
			ratios[s] = append(ratios[s], r)
			fmt.Fprintf(tw, "\t%.4g", r)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\nper-speed growth exponent (ratio ∝ n^b):")
	for _, s := range speeds {
		b := fitExponent(ns, ratios[s])
		verdict := "bounded"
		if b > 0.03 {
			verdict = "growing"
		}
		fmt.Printf("  s=%-6.3g b=%+.4f  %s\n", s, b, verdict)
	}
	if *plot {
		series := make([]stats.Series, 0, len(speeds))
		for _, s := range speeds {
			series = append(series, stats.Series{
				Name: fmt.Sprintf("s=%.3g", s),
				X:    ns,
				Y:    ratios[s],
			})
		}
		fmt.Println()
		fmt.Print(stats.Plot(series, 72, 20, true, true))
	}
}

func fitExponent(xs, ys []float64) float64 { return stats.FitPowerLaw(xs, ys) }

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrlb:", err)
	os.Exit(1)
}

// Command rrsim simulates one scheduling policy (or all of them) on a
// workload and prints flow-time statistics — the quickest way to poke at
// the library.
//
// Examples:
//
//	rrsim -workload poisson:n=200,load=0.9,dist=exp -policy RR -speed 2
//	rrsim -workload cascade:levels=8 -policy all -k 2 -lb
//	rrsim -workload trace:path=jobs.csv -policy SRPT -m 4
//	rrsim -workload poisson:n=500,load=0.9 -policy RR -speeds 1,2,4 -preempt-cost 0.01
//	rrsim -replay jobs.ndjson -policy RR -m 4
//	rrsim -replay huge.ndjson.gz -policy SRPT
//
// -replay streams the trace through the engines' JobSource path: jobs are
// decoded lazily and never materialized, so memory is bounded by the
// schedule's alive set no matter how long the trace is. Flow statistics
// come from the streaming ℓk-norm observer instead of per-job arrays.
// gzip-compressed traces are detected by their magic bytes and
// decompressed on the fly — no gzip -dc pipe needed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/polspec"
	"rrnorm/internal/trace"
	"rrnorm/internal/workload"
)

func main() {
	var (
		spec    = flag.String("workload", "poisson:n=100,load=0.9,dist=exp,mean=1", "workload spec (see internal/workload.FromSpec)")
		polName = flag.String("policy", "RR", "policy spec (e.g. RR, LAPS:beta=0.3, GITTINS:dist=pareto) or 'all'")
		m       = flag.Int("m", 1, "number of machines (defaults to len(-speeds) when that is set)")
		speed   = flag.Float64("speed", 1, "resource-augmentation speed for the policy")
		speeds  = flag.String("speeds", "", "comma-separated per-machine relative speeds, e.g. 1,2,4 (empty: identical unit machines)")
		pCost   = flag.Float64("preempt-cost", 0, "extra work charged to a job each time it is preempted")
		k       = flag.Int("k", 2, "k for the ℓk-norm report and -lb ratio")
		seed    = flag.Uint64("seed", 1, "workload RNG seed")
		engine  = flag.String("engine", "auto", "simulation engine: auto, reference or fast")
		withLB  = flag.Bool("lb", false, "also compute the LP/2 lower bound and ratio")
		dump    = flag.String("dump", "", "write the generated workload as CSV to this path")
		resOut  = flag.String("resultout", "", "write the last policy's full result as JSON to this path")
		replay  = flag.String("replay", "", "replay a job trace file through the streaming path ('-' for stdin) instead of -workload")
		format  = flag.String("format", "ndjson", "trace format for -replay: ndjson or csv")
		sortRel = flag.Bool("sort", false, "buffer and sort an out-of-order -replay trace by release (costs O(n) memory)")
	)
	flag.Parse()

	eng, err := core.ParseEngineKind(*engine)
	if err != nil {
		fatal(err)
	}
	mm, err := machineModel(*speeds, *pCost, m)
	if err != nil {
		fatal(err)
	}

	if *replay != "" {
		if *withLB || *dump != "" || *resOut != "" {
			fatal(fmt.Errorf("-lb, -dump and -resultout need materialized results; they are incompatible with -replay"))
		}
		runReplay(*replay, *format, *sortRel, *polName, *m, *speed, mm, eng)
		return
	}

	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload: %s\n", workload.Describe(in))
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := workload.WriteCSV(f, in); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("trace written to %s\n", *dump)
	}

	var lb lp.Bound
	if *withLB {
		lb, err = lp.KPowerLowerBound(in, *m, *k, lp.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lower bound on OPT's ΣF^%d (unit speed): %.6g  [%s]\n", *k, lb.Value, lb.Method)
	}

	names := []string{*polName}
	if *polName == "all" {
		names = policy.Names()
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "policy\tmean\tL1\tL2\tL3\tmax\tp99\tjain")
	if *withLB {
		fmt.Fprintf(tw, "\tℓ%d-ratio", *k)
	}
	fmt.Fprintln(tw)
	var last *core.Result
	for _, name := range names {
		p, err := polspec.New(name)
		if err != nil {
			fatal(err)
		}
		res, err := fast.Run(in, p, core.Options{Machines: *m, Speed: *speed, MachineModel: mm, RecordSegments: *resOut != "", Engine: eng})
		if err != nil {
			fatal(err)
		}
		last = res
		s := metrics.Summarize(res.Flow)
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.4g\t%.3f",
			name, s.MeanFlow, s.L1, s.L2, s.L3, s.MaxFlow, s.P99, s.Jain)
		if *withLB {
			ratio := math.Pow(metrics.KthPowerSum(res.Flow, *k)/lb.Value, 1/float64(*k))
			fmt.Fprintf(tw, "\t%.4g", ratio)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	if *resOut != "" && last != nil {
		f, err := os.Create(*resOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(last); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Printf("result JSON written to %s\n", *resOut)
	}
}

// runReplay streams the trace at path (or stdin for "-") through the
// engines' JobSource path, once per requested policy. The trace is decoded
// lazily and per-job flows fold into streaming ℓk-norms, so memory stays
// bounded by the alive set. "all" reopens the file per policy and is
// therefore rejected for stdin, which can only be read once.
func runReplay(path, formatName string, sortRel bool, polName string, m int, speed float64, mm core.Machines, eng core.EngineKind) {
	f, err := trace.ParseFormat(formatName)
	if err != nil {
		fatal(err)
	}
	names := []string{polName}
	if polName == "all" {
		if path == "-" {
			fatal(fmt.Errorf("-policy all replays the trace once per policy; it cannot be combined with stdin"))
		}
		names = policy.Names()
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tn\tevents\tmakespan\tL1\tL2\tL3\tmax")
	ws := core.NewWorkspace()
	for _, name := range names {
		p, err := polspec.New(name)
		if err != nil {
			fatal(err)
		}
		var r io.Reader = os.Stdin
		if path != "-" {
			file, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			defer file.Close()
			r = file
		}
		r, err = trace.MaybeGunzip(r)
		if err != nil {
			fatal(fmt.Errorf("replay %s: %w", path, err))
		}
		dec := trace.NewDecoder(r, trace.DecodeOptions{Format: f, Sort: sortRel})
		sn := metrics.NewStreamNorm(1, 2, 3)
		sum, err := fast.RunStream(dec, p, core.Options{Machines: m, Speed: speed, MachineModel: mm, Engine: eng, Observer: sn}, ws)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.6g\t%.6g\t%.6g\t%.6g\t%.6g\n",
			name, sum.N, sum.Events, sum.Makespan, sn.Norm(1), sn.Norm(2), sn.Norm(3), sum.MaxFlow)
	}
	tw.Flush()
}

// machineModel assembles the core.Machines model from the -speeds and
// -preempt-cost flags, defaulting an unset -m to the speed vector's length
// (an explicitly set -m must match it; core validates the rest at run time).
func machineModel(speeds string, preemptCost float64, m *int) (core.Machines, error) {
	var mm core.Machines
	mm.PreemptCost = preemptCost
	if strings.TrimSpace(speeds) == "" {
		return mm, nil
	}
	for _, part := range strings.Split(speeds, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return mm, fmt.Errorf("-speeds: bad entry %q: %w", part, err)
		}
		mm.Speeds = append(mm.Speeds, f)
	}
	mSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "m" {
			mSet = true
		}
	})
	if !mSet {
		*m = len(mm.Speeds)
	} else if *m != len(mm.Speeds) {
		return mm, fmt.Errorf("-speeds has %d entries but -m is %d", len(mm.Speeds), *m)
	}
	return mm, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrsim:", err)
	os.Exit(1)
}

// Command rrcert runs Round Robin on a workload and builds the paper's
// dual-fitting certificate (Sections 3.2–3.4): the α/β dual variables,
// Lemma 1/2 verdicts, dual-constraint feasibility, and the implied
// per-instance competitive-ratio bound.
//
// Examples:
//
//	rrcert -workload poisson:n=120,load=0.9 -k 2 -eps 0.05
//	rrcert -workload cascade:levels=8 -k 2 -speed 1        # watch it fail unaugmented
package main

import (
	"flag"
	"fmt"
	"os"

	"rrnorm/internal/core"
	"rrnorm/internal/dual"
	"rrnorm/internal/policy"
	"rrnorm/internal/workload"
)

func main() {
	var (
		spec    = flag.String("workload", "poisson:n=100,load=0.9,dist=exp,mean=1", "workload spec")
		m       = flag.Int("m", 1, "number of identical machines")
		k       = flag.Int("k", 2, "ℓk-norm exponent")
		eps     = flag.Float64("eps", 0.05, "ε ∈ (0, 0.1] (δ=ε, γ=k(k/ε)^k)")
		speed   = flag.Float64("speed", 0, "RR's speed; 0 = the theorem speed 2k(1+10ε)")
		seed    = flag.Uint64("seed", 1, "workload RNG seed")
		verbose = flag.Bool("v", false, "print the most binding per-job constraints")
		dump    = flag.String("dump", "", "write per-job α/slack/flow diagnostics as CSV to this path")
	)
	flag.Parse()

	in, err := workload.FromSpec(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	s := *speed
	if s <= 0 {
		s = dual.Eta(*k, *eps)
	}
	fmt.Printf("workload: %s\nRR on m=%d machines at speed %.4g (theorem speed: %.4g)\n",
		workload.Describe(in), *m, s, dual.Eta(*k, *eps))
	// The certificate is built by a streaming witness observer during the
	// run — no Segment timeline is materialized, so memory stays O(n)
	// instead of O(events·n). The construction is shared with dual.Build,
	// so the result is identical to the old recorded-run path.
	w, err := dual.NewWitnessObserver(*k, *eps, *m)
	if err != nil {
		fatal(err)
	}
	res, err := core.Run(in, policy.NewRR(), core.Options{Machines: *m, Speed: s, Observer: w})
	if err != nil {
		fatal(err)
	}
	cert, err := w.Certificate()
	if err != nil {
		fatal(err)
	}
	fmt.Println(cert)
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(f, "job_id,alpha,slack,flow")
		for _, d := range cert.TopBinding(res, len(res.Jobs)) {
			fmt.Fprintf(f, "%d,%.9g,%.9g,%.9g\n", d.JobID, d.Alpha, d.Slack, d.Flow)
		}
		f.Close()
		fmt.Printf("diagnostics written to %s\n", *dump)
	}
	if *verbose {
		fmt.Println("\nmost binding jobs (slack ≤ 0 means the constraint holds):")
		for _, d := range cert.TopBinding(res, 8) {
			fmt.Printf("  job %-5d slack %+9.3g  α=%-10.4g F=%.4g\n", d.JobID, d.Slack, d.Alpha, d.Flow)
		}
	}
	if !cert.Feasible {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rrcert:", err)
	os.Exit(1)
}

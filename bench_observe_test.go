package rrnorm_test

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"rrnorm/internal/core"
	"rrnorm/internal/fast"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// observeBenchN is the committed-baseline size: one million jobs, the scale
// at which a recorded Segment timeline stops being a reasonable data
// structure (hundreds of MB live) while the streaming observers stay O(1).
const observeBenchN = 1_000_000

func observeInstance(n int) *core.Instance {
	return workload.PoissonLoad(stats.NewRNG(3), n, 4, 0.9, workload.ExpSizes{M: 1})
}

// --- acceptance: a million-job run without Segments --------------------------

// TestStreamNormMillionJobs is the streaming-pipeline acceptance test: an
// n=1e6 RR run with a StreamNorm attached completes on the fast engine
// without materializing Segments, and its ℓ1/ℓ2/ℓ3 agree with the
// Flow-derived reference (metrics.LkNorm — the exact post-processing the
// Segment-pipeline consumers computed) at 1e-6. Agreement with the Segment
// timeline itself is pinned separately by the 1200-seed differential test
// in internal/check, where recording is affordable.
func TestStreamNormMillionJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("million-job run is too slow for -short")
	}
	in := observeInstance(observeBenchN)
	sn := metrics.NewStreamNorm(1, 2, 3)
	res, err := fast.Run(in, policy.NewRR(), core.Options{Machines: 4, Speed: 1, Observer: sn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != nil {
		t.Fatalf("run materialized %d Segments; the observer path must not record", len(res.Segments))
	}
	if sn.N() != in.N() {
		t.Fatalf("StreamNorm saw %d completions, want %d", sn.N(), in.N())
	}
	for _, k := range []int{1, 2, 3} {
		want := metrics.LkNorm(res.Flow, k)
		got := sn.Norm(k)
		if rel := math.Abs(got-want) / (1 + math.Abs(want)); rel > 1e-6 {
			t.Errorf("L%d: stream %.17g vs batch %.17g (rel %.3g)", k, got, want, rel)
		}
	}
}

// --- allocation budget (CI bench smoke) --------------------------------------

// TestObserverAllocBudget extends the workspace allocation budget to runs
// with observers attached: a reused StreamNorm+Timeline fan-out must keep
// the steady state at zero heap allocations per run on both engines. The
// no-observer budget is TestEngineAllocBudget; together they pin the two
// halves of the PR-4/PR-5 contract — observer dispatch costs nothing when
// absent and allocates nothing when present.
func TestObserverAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is disturbed by -short test interleavings")
	}
	in := workload.PoissonLoad(stats.NewRNG(7), 2000, 2, 0.9, workload.ExpSizes{M: 1})
	sn := metrics.NewStreamNorm(1, 2, 3)
	tl := stats.NewTimelineObserver(2)
	obs := core.Multi(sn, tl)
	p := policy.NewRR()
	for _, eng := range []core.EngineKind{core.EngineReference, core.EngineFast} {
		t.Run(eng.String(), func(t *testing.T) {
			ws := core.NewWorkspace()
			opts := core.Options{Machines: 2, Speed: 1, Engine: eng, Observer: obs}
			run := func() {
				sn.Reset()
				tl.Reset()
				if _, err := fast.RunWS(in, p, opts, ws); err != nil {
					t.Fatal(err)
				}
			}
			run() // warm-up: grows buffers, attaches scratch
			if allocs := testing.AllocsPerRun(10, run); allocs > 0 {
				t.Errorf("%v: %v allocs/run with observers attached, want 0", eng, allocs)
			}
		})
	}
}

// --- benchmark: observers vs RecordSegments ----------------------------------

// benchObservePath times one run configuration with workspace reuse.
func benchObservePath(b *testing.B, in *core.Instance, opts core.Options, reset func()) {
	b.Helper()
	ws := core.NewWorkspace()
	p := policy.NewRR()
	run := func() {
		if reset != nil {
			reset()
		}
		if _, err := fast.RunWS(in, p, opts, ws); err != nil {
			b.Fatal(err)
		}
	}
	run() // warm-up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkObserverVsSegments compares the streaming observer pipeline
// against Segment recording at n=1e5 (small enough for the 100x CI smoke
// pass; BENCH_observe.json holds the committed n=1e6 numbers). The
// segments leg necessarily runs the reference engine — recording forces
// it — so observer/reference is the apples-to-apples comparison and
// observer/fast is the full fast-path win.
func BenchmarkObserverVsSegments(b *testing.B) {
	in := observeInstance(100_000)
	b.Run("segments/reference", func(b *testing.B) {
		benchObservePath(b, in, core.Options{Machines: 4, Speed: 1, RecordSegments: true}, nil)
	})
	sn := metrics.NewStreamNorm(1, 2, 3)
	b.Run("observer/reference", func(b *testing.B) {
		benchObservePath(b, in,
			core.Options{Machines: 4, Speed: 1, Engine: core.EngineReference, Observer: sn},
			sn.Reset)
	})
	b.Run("observer/fast", func(b *testing.B) {
		benchObservePath(b, in,
			core.Options{Machines: 4, Speed: 1, Engine: core.EngineFast, Observer: sn},
			sn.Reset)
	})
}

// --- committed baseline (make bench-engine) ----------------------------------

// observePath is one row of BENCH_observe.json: timing from a
// testing.Benchmark pass plus the memory story of a single run —
// TotalAlloc delta (GC-independent churn) and the process peak RSS
// (VmHWM) sampled right after the run.
type observePath struct {
	Engine          string  `json:"engine"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BytesPerOp      int64   `json:"bytes_per_op"`
	RunAllocBytes   uint64  `json:"run_alloc_bytes"`
	PeakRSSBytes    uint64  `json:"peak_rss_bytes"`
	HeapInuseBytes  uint64  `json:"heap_inuse_after_bytes"`
	SegmentsPerRun  int     `json:"segments_per_run"`
	CompletionsSeen int     `json:"completions_seen"`
}

// observeBenchBaseline is the schema of BENCH_observe.json.
type observeBenchBaseline struct {
	Benchmark string `json:"benchmark"`
	GoMaxProc int    `json:"gomaxprocs"`
	N         int    `json:"n"`
	Machines  int    `json:"machines"`
	// Paths: bare (no observer, fast), observer_fast, observer_reference,
	// segments_reference — measured in that order so the monotone VmHWM
	// readings bound each path's own peak from below.
	Paths map[string]observePath `json:"paths"`
	// ObserverOverheadFast is observer_fast vs bare ns/op on the fast
	// engine: the marginal cost of streaming ℓk norms.
	ObserverOverheadFast float64 `json:"observer_overhead_fast"`
	// SegmentsAllocRatio is segments_reference vs observer_reference
	// run_alloc_bytes: how much heap churn Segment recording adds over the
	// streaming pipeline on the same engine. The observer path churns zero
	// bytes in steady state, so the denominator is clamped to 1 MiB to keep
	// the committed figure finite.
	SegmentsAllocRatio float64 `json:"segments_alloc_ratio"`
}

// peakRSSBytes reads the process high-water RSS (VmHWM) from
// /proc/self/status; 0 where unavailable. The reading is monotone over the
// process lifetime, so measure cheap paths before expensive ones.
func peakRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return 0
		}
		kb, err := strconv.ParseUint(f[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// measureObservePath benchmarks one configuration and takes the memory
// readings of a single additional run.
func measureObservePath(t *testing.T, in *core.Instance, opts core.Options, reset func()) observePath {
	t.Helper()
	ws := core.NewWorkspace()
	p := policy.NewRR()
	run := func(fail func(...any)) *core.Result {
		if reset != nil {
			reset()
		}
		res, err := fast.RunWS(in, p, opts, ws)
		if err != nil {
			fail(err)
		}
		return res
	}
	r := testing.Benchmark(func(b *testing.B) {
		run(b.Fatal) // warm-up
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b.Fatal)
		}
	})
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := run(t.Fatal)
	runtime.ReadMemStats(&after)
	return observePath{
		NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp:     r.AllocsPerOp(),
		BytesPerOp:      r.AllocedBytesPerOp(),
		RunAllocBytes:   after.TotalAlloc - before.TotalAlloc,
		PeakRSSBytes:    peakRSSBytes(),
		HeapInuseBytes:  after.HeapInuse,
		SegmentsPerRun:  len(res.Segments),
		CompletionsSeen: len(res.Flow),
	}
}

// TestWriteObserveBenchBaseline rewrites BENCH_observe.json: the n=1e6
// observers-vs-RecordSegments comparison behind the streaming pipeline's
// perf claim. Gated behind WRITE_BENCH=1 (`make bench-engine`) because the
// segments leg materializes the full million-job timeline on purpose. The
// writer enforces the acceptance gates — 0 allocs/op on both observer
// paths in steady state, and Segment recording churning at least 10× the
// observer path's heap — so the committed numbers cannot drift below what
// DESIGN.md §13 claims.
func TestWriteObserveBenchBaseline(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to rewrite BENCH_observe.json")
	}
	in := observeInstance(observeBenchN)
	base := observeBenchBaseline{
		Benchmark: "BenchmarkObserverVsSegments",
		GoMaxProc: runtime.GOMAXPROCS(0),
		N:         observeBenchN,
		Machines:  4,
		Paths:     map[string]observePath{},
	}
	sn := metrics.NewStreamNorm(1, 2, 3)
	type leg struct {
		name   string
		engine string
		opts   core.Options
		reset  func()
	}
	// Order matters: VmHWM is monotone, so the cheap paths go first.
	legs := []leg{
		{"bare", "fast", core.Options{Machines: 4, Speed: 1, Engine: core.EngineFast}, nil},
		{"observer_fast", "fast", core.Options{Machines: 4, Speed: 1, Engine: core.EngineFast, Observer: sn}, sn.Reset},
		{"observer_reference", "reference", core.Options{Machines: 4, Speed: 1, Engine: core.EngineReference, Observer: sn}, sn.Reset},
		{"segments_reference", "reference", core.Options{Machines: 4, Speed: 1, RecordSegments: true}, nil},
	}
	for _, l := range legs {
		p := measureObservePath(t, in, l.opts, l.reset)
		p.Engine = l.engine
		base.Paths[l.name] = p
		t.Logf("%s: %.0f ns/op, %d allocs/op, run churn %.1f MB, peak RSS %.1f MB, %d segments",
			l.name, p.NsPerOp, p.AllocsPerOp, float64(p.RunAllocBytes)/1e6, float64(p.PeakRSSBytes)/1e6, p.SegmentsPerRun)
		if strings.HasPrefix(l.name, "observer") || l.name == "bare" {
			if p.AllocsPerOp > 0 {
				t.Errorf("%s: %d allocs/op in steady state, budget is 0", l.name, p.AllocsPerOp)
			}
			if p.SegmentsPerRun != 0 {
				t.Errorf("%s: materialized %d Segments", l.name, p.SegmentsPerRun)
			}
		}
	}
	bare, of := base.Paths["bare"], base.Paths["observer_fast"]
	or, seg := base.Paths["observer_reference"], base.Paths["segments_reference"]
	base.ObserverOverheadFast = of.NsPerOp/bare.NsPerOp - 1
	base.SegmentsAllocRatio = float64(seg.RunAllocBytes) / math.Max(1<<20, float64(or.RunAllocBytes))
	t.Logf("observer overhead on fast engine: %.1f%%; segments heap churn ratio: %.0fx",
		base.ObserverOverheadFast*100, base.SegmentsAllocRatio)
	if base.SegmentsAllocRatio < 10 {
		t.Errorf("Segment recording churns only %.1fx the observer path's heap; the streaming claim needs ≥10x", base.SegmentsAllocRatio)
	}
	buf, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile("BENCH_observe.json", buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_observe.json")
}

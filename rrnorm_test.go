package rrnorm_test

import (
	"math"
	"testing"

	"rrnorm"
)

func TestFacadeSimulate(t *testing.T) {
	in := rrnorm.NewInstance([]rrnorm.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	})
	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Completion[0]-4) > 1e-9 || math.Abs(res.Completion[1]-4) > 1e-9 {
		t.Fatalf("RR completions: %v", res.Completion)
	}
	if _, err := rrnorm.Simulate(in, "NOPE", rrnorm.Options{Machines: 1, Speed: 1}); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestFacadePolicies(t *testing.T) {
	names := rrnorm.Policies()
	if len(names) != 12 {
		t.Fatalf("policies: %v", names)
	}
	p, err := rrnorm.NewPolicy("SRPT")
	if err != nil || !p.Clairvoyant() {
		t.Fatalf("SRPT: %v %v", p, err)
	}
	in := rrnorm.FromSpecMust("staircase:n=3", 1)
	if _, err := rrnorm.SimulateWith(in, p, rrnorm.Options{Machines: 1, Speed: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNorms(t *testing.T) {
	if got := rrnorm.LkNorm([]float64{3, 4}, 2); math.Abs(got-5) > 1e-12 {
		t.Fatalf("L2 = %v", got)
	}
	if got := rrnorm.KthPowerSum([]float64{3, 4}, 2); math.Abs(got-25) > 1e-12 {
		t.Fatalf("sum = %v", got)
	}
}

func TestFacadeLowerBoundAndCertify(t *testing.T) {
	in := rrnorm.FromSpecMust("poisson:n=30,load=0.8,dist=exp,mean=1", 3)
	lb, err := rrnorm.LowerBound(in, 1, 2)
	if err != nil || lb <= 0 {
		t.Fatalf("LowerBound: %v %v", lb, err)
	}
	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if alg := rrnorm.KthPowerSum(res.Flow, 2); alg < lb {
		t.Fatalf("bound %v above RR's objective %v", lb, alg)
	}
	cert, err := rrnorm.Certify(in, 1, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Feasible || !cert.Lemma1OK || !cert.Lemma2OK {
		t.Fatalf("certificate should hold at theorem speed: %s", cert)
	}
}

func TestFromSpecMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rrnorm.FromSpecMust("definitely-not-a-kind", 1)
}

func TestFacadeAnalytics(t *testing.T) {
	in := rrnorm.FromSpecMust("bursts:bursts=2,size=3,period=5", 1)
	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 2, Speed: 1, RecordSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := rrnorm.FractionalFlows(res)
	if err != nil || len(ff) != in.N() {
		t.Fatalf("FractionalFlows: %v %v", ff, err)
	}
	if g := rrnorm.Gantt(res, 40); len(g) == 0 {
		t.Fatal("empty gantt")
	}
	ts := rrnorm.TimeStats(res)
	if ts.BusyTime <= 0 || ts.AvgAlive <= 0 {
		t.Fatalf("TimeStats: %+v", ts)
	}
	if got := rrnorm.WeightedLkNorm([]float64{3, 4}, []float64{1, 1}, 2); math.Abs(got-5) > 1e-12 {
		t.Fatalf("WeightedLkNorm: %v", got)
	}
}

package rrnorm_test

import (
	"fmt"

	"rrnorm"
)

// The paper's core object: Round Robin gives every alive job an equal
// machine share, so two equal jobs released together finish together.
func ExampleSimulate() {
	in := rrnorm.NewInstance([]rrnorm.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	})
	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completions: %.0f %.0f\n", res.Completion[0], res.Completion[1])
	fmt.Printf("l2 norm of flow: %.3f\n", rrnorm.LkNorm(res.Flow, 2))
	// Output:
	// completions: 4 4
	// l2 norm of flow: 5.657
}

// SRPT on the same instance finishes one job first — better total flow,
// less instantaneous fairness.
func ExampleSimulate_srpt() {
	in := rrnorm.NewInstance([]rrnorm.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	})
	res, _ := rrnorm.Simulate(in, "SRPT", rrnorm.Options{Machines: 1, Speed: 1})
	fmt.Printf("total flow RR-vs-SRPT: 8 vs %.0f\n", rrnorm.LkNorm(res.Flow, 1))
	// Output:
	// total flow RR-vs-SRPT: 8 vs 6
}

// Norms interpolate between average latency (k=1) and worst case (k→∞);
// the paper's subject is k=2.
func ExampleLkNorm() {
	flows := []float64{3, 4}
	fmt.Printf("l1=%.0f l2=%.0f\n", rrnorm.LkNorm(flows, 1), rrnorm.LkNorm(flows, 2))
	// Output:
	// l1=7 l2=5
}

// Certify runs Theorem 1's dual-fitting analysis on a concrete schedule:
// at speed 2k(1+10ε) the certificate is feasible with dual objective at
// least ε·ΣF^k.
func ExampleCertify() {
	in := rrnorm.FromSpecMust("staircase:n=6", 1)
	cert, err := rrnorm.Certify(in, 1, 2, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("feasible=%v lemma1=%v lemma2=%v fraction≥ε=%v\n",
		cert.Feasible, cert.Lemma1OK, cert.Lemma2OK, cert.ObjectiveFraction >= 0.05)
	// Output:
	// feasible=true lemma1=true lemma2=true fraction≥ε=true
}

// A streaming observer computes metrics during the run — here the ℓk
// norms of flow, with no Result post-processing and no recorded Segment
// timeline — which is how the experiment suite runs million-job sweeps.
func ExampleNewStreamNorm() {
	in := rrnorm.NewInstance([]rrnorm.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	})
	sn := rrnorm.NewStreamNorm(1, 2)
	_, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 1, Observer: sn})
	if err != nil {
		panic(err)
	}
	fmt.Printf("l1=%.0f l2=%.3f over %d completions\n", sn.Norm(1), sn.Norm(2), sn.N())
	// Output:
	// l1=8 l2=5.657 over 2 completions
}

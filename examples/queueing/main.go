// Queueing: validate the simulator against closed-form queueing theory.
// Round Robin is exactly processor sharing, so an M/M/1 workload must
// reproduce E[T] = E[S]/(1−ρ); FCFS must match Pollaczek–Khinchine; and
// SRPT must match the Schrage–Miller mean. This is the "trust the engine"
// example: three independent analytic oracles, one simulator.
package main

import (
	"fmt"
	"log"
	"math"

	"rrnorm"
	"rrnorm/internal/metrics"
	"rrnorm/internal/queueing"
)

func main() {
	const (
		load = 0.75
		n    = 40000
	)
	spec := fmt.Sprintf("poisson:n=%d,load=%v,dist=exp,mean=1", n, load)
	in := rrnorm.FromSpecMust(spec, 2024)
	fmt.Printf("M/M/1 at ρ=%.2f, %d jobs\n\n", load, n)

	sim := func(policy string) float64 {
		res, err := rrnorm.Simulate(in, policy, rrnorm.Options{Machines: 1, Speed: 1})
		if err != nil {
			log.Fatal(err)
		}
		return metrics.Mean(res.Flow)
	}

	ps, _ := queueing.MM1{Lambda: load, Mu: 1}.MeanSojournPS()
	fcfs, _ := queueing.MG1{Lambda: load, ES: 1, ES2: 2}.MeanSojournFCFS()
	srpt, err := queueing.SRPTQueue{
		Lambda:  load,
		Density: func(x float64) float64 { return math.Exp(-x) },
		Sup:     30,
		Steps:   4000,
	}.MeanSojournSRPT()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-6s theory %.4f   simulated %.4f\n", "RR/PS", ps, sim("RR"))
	fmt.Printf("%-6s theory %.4f   simulated %.4f  (Pollaczek–Khinchine)\n", "FCFS", fcfs, sim("FCFS"))
	fmt.Printf("%-6s theory %.4f   simulated %.4f  (Schrage–Miller)\n", "SRPT", srpt, sim("SRPT"))
	fmt.Println("\nPS insensitivity: RR's mean sojourn is E[S]/(1−ρ) for ANY size distribution —")
	det := rrnorm.FromSpecMust(fmt.Sprintf("poisson:n=%d,load=%v,dist=fixed,mean=1", n, load), 2025)
	res, err := rrnorm.Simulate(det, "RR", rrnorm.Options{Machines: 1, Speed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic sizes: simulated %.4f (same theory %.4f)\n", metrics.Mean(res.Flow), ps)
}

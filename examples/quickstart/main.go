// Quickstart: simulate Round Robin and SRPT on a Poisson stream of jobs,
// report ℓ1/ℓ2/ℓ∞ flow-time norms, and show what resource augmentation
// (faster machines) buys RR — the paper's Theorem 1 in miniature.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"rrnorm"
)

func main() {
	// 200 jobs, Poisson arrivals at 90% machine load, exponential sizes.
	in := rrnorm.FromSpecMust("poisson:n=200,load=0.9,dist=exp,mean=1", 7)
	fmt.Printf("simulating %d jobs on one machine\n\n", in.N())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tspeed\ttotal flow (ℓ1)\tℓ2 norm\tmax flow (ℓ∞)")
	for _, pol := range []string{"RR", "SRPT"} {
		for _, speed := range []float64{1, 2, 4} {
			res, err := rrnorm.Simulate(in, pol, rrnorm.Options{Machines: 1, Speed: speed})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%.3g\t%.5g\t%.5g\t%.5g\n",
				pol, speed,
				rrnorm.LkNorm(res.Flow, 1),
				rrnorm.LkNorm(res.Flow, 2),
				res.MaxFlow())
		}
	}
	tw.Flush()

	// A certified lower bound on any unit-speed scheduler's Σ F² lets us
	// bracket RR's ℓ2 competitive ratio on this instance.
	lb, err := rrnorm.LowerBound(in, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 4})
	if err != nil {
		log.Fatal(err)
	}
	ratio := rrnorm.LkNorm(res.Flow, 2) / math.Sqrt(lb)
	fmt.Printf("\nRR at speed 4: ℓ2 ratio vs certified OPT lower bound ≤ %.3f\n", ratio)
	fmt.Println("(Theorem 1: RR is (4+ε)-speed O(1)-competitive for the ℓ2 norm)")
}

// Certificate: the paper's dual-fitting analysis (Sections 3.2–3.4) run as
// a program. We simulate Round Robin at the Theorem 1 speed η = 2k(1+10ε),
// build the α/β dual variables exactly as the paper sets them, verify
// Lemma 1, Lemma 2 and the dual constraints numerically, and print the
// per-instance competitive-ratio bound the feasible dual certifies. Then we
// rerun at speed 1 to watch the same construction fail — the speed
// augmentation is doing real work.
package main

import (
	"fmt"
	"log"

	"rrnorm"
	"rrnorm/internal/dual"
	"rrnorm/internal/policy"
)

func main() {
	const (
		k   = 2
		eps = 0.05
	)
	in := rrnorm.FromSpecMust("poisson:n=150,load=0.9,dist=exp,mean=1", 13)
	fmt.Printf("instance: %d jobs, k=%d, ε=%g, theorem speed η=%g\n\n", in.N(), k, eps, dual.Eta(k, eps))

	cert, err := rrnorm.Certify(in, 1, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- at the theorem speed ---")
	fmt.Println(cert)

	// The same dual construction on an unaugmented RR schedule.
	res, err := rrnorm.SimulateWith(in, policy.NewRR(),
		rrnorm.Options{Machines: 1, Speed: 1, RecordSegments: true})
	if err != nil {
		log.Fatal(err)
	}
	slow, err := dual.Build(res, k, eps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- at speed 1 (no augmentation) ---")
	fmt.Println(slow)
	if cert.Feasible && !slow.Feasible {
		fmt.Println("\nthe certificate holds exactly where Theorem 1 says it must.")
	}
}

// Webserver: the paper's opening server-client scenario. A pool of m=4
// identical workers serves a request stream that mixes a steady Poisson
// background with periodic traffic bursts (think cron-triggered batch
// endpoints landing on top of interactive traffic). We ask the operational
// question directly: which scheduling policy keeps the p99 latency and the
// worst case sane without giving up the average — and how much extra
// capacity ("speed") RR needs to dominate outright.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"rrnorm"
	"rrnorm/internal/core"
	"rrnorm/internal/metrics"
)

func main() {
	const machines = 4

	// Interactive background: many small requests at 70% pool load.
	background := rrnorm.FromSpecMust(
		fmt.Sprintf("poisson:n=800,m=%d,load=0.7,dist=exp,mean=0.5", machines), 31)
	// Batch bursts: every 25s, 12 chunky requests arrive at once.
	bursts := rrnorm.FromSpecMust("bursts:bursts=8,size=12,period=25,dist=uniform,lo=2,hi=6", 32)
	in := core.Merge(background, bursts)
	fmt.Printf("request trace: %d requests on %d workers\n\n", in.N(), machines)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tspeed\tmean\tp50\tp95\tp99\tmax\tℓ2")
	for _, pol := range []string{"FCFS", "SRPT", "SETF", "RR", "MLFQ"} {
		for _, speed := range []float64{1, 2} {
			res, err := rrnorm.Simulate(in, pol, rrnorm.Options{Machines: machines, Speed: speed})
			if err != nil {
				log.Fatal(err)
			}
			s := metrics.Summarize(res.Flow)
			fmt.Fprintf(tw, "%s\t%.3g\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.4g\n",
				pol, speed, s.MeanFlow, s.P50, s.P95, s.P99, s.MaxFlow, s.L2)
		}
	}
	tw.Flush()

	fmt.Println("\nSRPT needs request-size estimates (clairvoyant); RR and MLFQ do not.")
	fmt.Println("The ℓ2 column is the paper's objective: it penalizes exactly the tail")
	fmt.Println("that p95/p99 make visible, while still tracking the mean.")
}

// Settings: a tour of the three related scheduling settings from the
// paper's backstory in which Round Robin's story continues — arbitrary
// speed-up curves (§1.2), broadcast scheduling (§1.3) and dynamic speed
// scaling ([16]) — each simulated with its RR variant and the comparison
// point the literature pairs it with.
package main

import (
	"fmt"
	"log"
	"math"

	"rrnorm/internal/bcast"
	"rrnorm/internal/metrics"
	"rrnorm/internal/scaling"
	"rrnorm/internal/spdup"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

func main() {
	fmt.Println("== 1. Arbitrary speed-up curves: EQUI (=RR) vs WLAPS vs clairvoyant proxy ==")
	const m = 16
	in := spdup.Alternating(m, 4, m)
	px, err := spdup.Run(in, spdup.Proxy{}, spdup.Options{Machines: m, Speed: 1})
	if err != nil {
		log.Fatal(err)
	}
	den := metrics.KthPowerSum(px.Flow, 2)
	for _, p := range []spdup.Policy{spdup.EQUI{}, spdup.NewWLAPS(2, 0.5, 0.02)} {
		res, err := spdup.Run(in, p, spdup.Options{Machines: m, Speed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s ℓ2 ratio vs proxy: %.3f\n", p.Name(),
			math.Sqrt(metrics.KthPowerSum(res.Flow, 2)/den))
	}
	fmt.Println("  (EQUI wastes allocations > 1 machine on sequential phases; WLAPS does not scale with m)")

	fmt.Println("\n== 2. Broadcast scheduling: merging requests for hot pages ==")
	bin := bcast.ZipfPoisson(stats.NewRNG(1), 300, 12, 0.9, 1.1, 4)
	lb := bcast.SpanBound(bin, 2)
	for _, p := range []bcast.Policy{bcast.RRRequest{}, bcast.RRPage{}, bcast.NewLWF(0.05)} {
		res, err := bcast.Run(bin, p, bcast.Options{Speed: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s ℓ2 ratio vs span bound (speed 2): %.3f\n", p.Name(),
			math.Sqrt(metrics.KthPowerSum(res.Flow, 2)/lb))
	}

	fmt.Println("\n== 3. Speed scaling: flow + energy with P(s) = s² ==")
	sin := workload.PoissonLoad(stats.NewRNG(2), 400, 1, 0.9, workload.ExpSizes{M: 1})
	slb := scaling.LowerBound(sin, 2)
	for _, opt := range []scaling.Options{
		{Alpha: 2, Discipline: scaling.RR},
		{Alpha: 2, Discipline: scaling.SRPT},
		{Alpha: 2, Discipline: scaling.RR, FixedSpeed: 1.2},
	} {
		res, err := scaling.Run(sin, opt)
		if err != nil {
			log.Fatal(err)
		}
		label := opt.Discipline.String()
		if opt.FixedSpeed > 0 {
			label = fmt.Sprintf("fixed %.1f", opt.FixedSpeed)
		}
		fmt.Printf("  %-9s cost ratio vs c_α·Σp: %.3f\n", label, res.Cost/slb)
	}
	fmt.Println("  (job-count scaling keeps power = alive count: energy exactly equals total flow)")
}

// Lowerbound: the dichotomy behind the paper's speed requirement. On the
// multi-scale cascade instance, Round Robin's ℓ2-norm competitive ratio
// (measured against the certified LP/2 lower bound on OPT) keeps growing
// with the instance size when the machine is too slow, and flattens once
// the speed clears the augmentation threshold — the paper cites that RR is
// NOT O(1)-competitive below speed 3/2 and proves it IS at speed 4+ε.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"rrnorm"
)

func main() {
	speeds := []float64{1.0, 1.4, 1.8, 2.5, 4.0}
	levels := []int{4, 6, 8, 10}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "n (jobs)")
	for _, s := range speeds {
		fmt.Fprintf(tw, "\tspeed %.1f", s)
	}
	fmt.Fprintln(tw)

	firstRatio := map[float64]float64{}
	lastRatio := map[float64]float64{}
	for _, L := range levels {
		in := rrnorm.FromSpecMust(fmt.Sprintf("cascade:levels=%d,theta=0.8", L), 0)
		lb, err := rrnorm.LowerBound(in, 1, 2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%d", in.N())
		for _, s := range speeds {
			res, err := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: s})
			if err != nil {
				log.Fatal(err)
			}
			r := math.Sqrt(rrnorm.KthPowerSum(res.Flow, 2) / lb)
			fmt.Fprintf(tw, "\t%.3f", r)
			if _, ok := firstRatio[s]; !ok {
				firstRatio[s] = r
			}
			lastRatio[s] = r
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()

	fmt.Println("\nverdicts (ratio trend as n grows 15 → 1023):")
	for _, s := range speeds {
		trend := "flat/shrinking — consistent with O(1)-competitive"
		if lastRatio[s] > firstRatio[s]*1.1 {
			trend = "GROWING — not O(1)-competitive at this speed"
		}
		fmt.Printf("  speed %.1f: %.3f → %.3f  %s\n", s, firstRatio[s], lastRatio[s], trend)
	}
}

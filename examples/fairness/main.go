// Fairness: the paper's motivation, from Silberschatz/Galvin/Gagne —
// "a system with reasonable and predictable response time may be considered
// more desirable than a system that is faster on the average, but is highly
// variable."
//
// This example runs size-aware (SRPT, SJF), elapsed-aware (SETF, MLFQ) and
// fair-share (RR) policies on a heavy-tailed request mix and breaks
// slowdowns (flow ÷ size) out by job-size quartile: RR gives every size
// class roughly the same slowdown (instantaneous fairness ⇒ uniform
// stretch), while SRPT-style policies make small jobs fly and big jobs
// crawl.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"rrnorm"
	"rrnorm/internal/metrics"
)

func main() {
	in := rrnorm.FromSpecMust("poisson:n=600,load=0.85,dist=pareto,alpha=1.6,xm=1,cap=100", 21)
	fmt.Println("heavy-tailed request mix (Pareto α=1.6), one machine, unit speed")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tmean stretch by size quartile (small→large)\tJain(stretch)\tmax flow")
	for _, pol := range []string{"RR", "SRPT", "SJF", "SETF", "MLFQ", "FCFS"} {
		res, err := rrnorm.Simulate(in, pol, rrnorm.Options{Machines: 1, Speed: 1})
		if err != nil {
			log.Fatal(err)
		}
		sizes := make([]float64, len(res.Jobs))
		for i, j := range res.Jobs {
			sizes[i] = j.Size
		}
		stretch := metrics.Stretches(res.Flow, sizes)

		// Quartiles by size.
		idx := make([]int, len(sizes))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return sizes[idx[a]] < sizes[idx[b]] })
		q := len(idx) / 4
		var cells string
		for c := 0; c < 4; c++ {
			lo, hi := c*q, (c+1)*q
			if c == 3 {
				hi = len(idx)
			}
			var s float64
			for _, i := range idx[lo:hi] {
				s += stretch[i]
			}
			cells += fmt.Sprintf("%7.2f", s/float64(hi-lo))
		}
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.4g\n", pol, cells, metrics.JainIndex(stretch), res.MaxFlow())
	}
	tw.Flush()

	fmt.Println("\nRR's quartile slowdowns are nearly level — temporal fairness —")
	fmt.Println("while size-based policies trade the big jobs' latency for the small jobs'.")
}

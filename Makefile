GO ?= go

.PHONY: build test verify bench fuzz suite clean

build:
	$(GO) build ./...

# Tier-1: what CI and the PR driver run.
test:
	$(GO) build ./... && $(GO) test ./...

# Full verify loop (see DESIGN.md "Verification loop"): vet + the whole
# test suite under the race detector. The exp suite and the differential
# harness both run experiments concurrently, so -race is load-bearing.
verify:
	$(GO) vet ./... && $(GO) test -race ./...

# Differential fuzzing of the fast engine against the reference engine.
# FUZZTIME=5m make fuzz for longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzEngineAgreement -fuzztime=$(FUZZTIME) ./internal/check

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the experiment suite into results/.
suite:
	$(GO) run ./cmd/rrbench -out results -html results/report.html -parallel

clean:
	rm -rf results

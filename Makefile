GO ?= go

.PHONY: build test verify lint lint-baseline lint-fix-check bench bench-engine bench-smoke fuzz hunt hunt-smoke replay-smoke suite serve serve-test serve-bench clean

# The rrlint baseline: accepted pre-existing findings (currently hotalloc
# debt in the comparison policies), subtracted from lint runs so only new
# findings fail. Regenerate with `make lint-baseline` after fixing entries.
LINT_BASELINE = internal/lint/testdata/lint.baseline

build:
	$(GO) build ./...

# Tier-1: what CI and the PR driver run.
test:
	$(GO) build ./... && $(GO) test ./...

# Full verify loop (see DESIGN.md "Verification loop"): vet + rrlint +
# the whole test suite under the race detector. The exp suite, the
# differential harness and the rrserve stress wall all run work
# concurrently, so -race is load-bearing. serve-test is part of
# `go test ./...` already; listing it keeps the race-mode service wall
# explicit in the verify contract.
verify: serve-test
	$(GO) vet ./... && $(GO) run ./cmd/rrlint -baseline $(LINT_BASELINE) && $(GO) test -race ./...

# Project-specific static analysis (DESIGN.md "Static analysis layer"):
# determinism, cancellation, float-safety, ownership and zero-alloc
# invariants. Exit 0 means a clean tree; exit 1 lists file:line
# diagnostics; exit 2 is a load error.
lint:
	$(GO) run ./cmd/rrlint -baseline $(LINT_BASELINE)

# Regenerate the baseline from the current tree's post-suppression
# findings. Run after fixing a baselined finding (to prune it) — never to
# absorb a new one; new findings should be fixed or //rrlint:ignore'd.
lint-baseline:
	$(GO) run ./cmd/rrlint -write-baseline $(LINT_BASELINE)

# Machine-readable lint pass for CI artifacts: same exit semantics as
# `lint`, but the findings (and the suppressed/baselined counts) land in
# rrlint.json instead of the terminal.
lint-fix-check:
	$(GO) run ./cmd/rrlint -baseline $(LINT_BASELINE) -json > rrlint.json

# The rrserve test wall on its own: e2e endpoints, cache/pool semantics,
# and the 64-client byte-identical stress test, all under -race.
serve-test:
	$(GO) test -race ./internal/serve ./internal/par ./internal/stats

# Run the service locally.
serve:
	$(GO) run ./cmd/rrserve -addr :8080

# Regenerate the serve cache baseline (BENCH_serve.json).
serve-bench:
	WRITE_BENCH=1 $(GO) test ./internal/serve -run TestWriteServeBenchBaseline -v

# Differential fuzzing of the fast engine against the reference engine,
# fuzzing of the rrserve request surface (decoder + spec parser), fuzzing
# of the hunt shrinker's contract (validity + ratio window), and fuzzing of
# the lint IR builder (CFG/def-use construction must be total over
# arbitrary syntax). FUZZTIME=5m make fuzz for longer campaigns.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzEngineAgreement -fuzztime=$(FUZZTIME) ./internal/check
	$(GO) test -fuzz=FuzzSimulateRequest -fuzztime=$(FUZZTIME) ./internal/serve
	$(GO) test -fuzz=FuzzShrinker -fuzztime=$(FUZZTIME) ./internal/hunt
	$(GO) test -fuzz=FuzzTraceDecode -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -fuzz=FuzzLintIR -fuzztime=$(FUZZTIME) ./internal/lint

# Adversarial ratio hunt (see DESIGN.md §14). `make hunt` runs the default
# championship cell; results are written to testdata/corpus only when you
# pass OUT/NAME explicitly via rrhunt flags.
hunt:
	$(GO) run ./cmd/rrhunt -k 2 -seed 1 -budget 2000 -v

# CI determinism gate: a fixed-seed, small-budget hunt must produce a
# byte-identical report across two runs, find an improvement over the
# analytic seeds, and keep the anomaly monitors silent (rrhunt exits 1 on
# any anomaly).
hunt-smoke:
	$(GO) build -o /tmp/rrhunt-smoke ./cmd/rrhunt
	/tmp/rrhunt-smoke -k 2 -seed 1 -budget 300 -maxjobs 36 -shrink-budget 120 > /tmp/rrhunt-smoke-1.txt
	/tmp/rrhunt-smoke -k 2 -seed 1 -budget 300 -maxjobs 36 -shrink-budget 120 > /tmp/rrhunt-smoke-2.txt
	cmp /tmp/rrhunt-smoke-1.txt /tmp/rrhunt-smoke-2.txt
	grep -q '^improved-over-seeds: true$$' /tmp/rrhunt-smoke-1.txt
	grep -q '^anomalies: 0$$' /tmp/rrhunt-smoke-1.txt
	rm -f /tmp/rrhunt-smoke /tmp/rrhunt-smoke-1.txt /tmp/rrhunt-smoke-2.txt

# Streaming replay determinism: replay the committed fixture twice through
# the JobSource path (every policy, file and stdin) and require
# byte-identical reports.
replay-smoke:
	$(GO) build -o /tmp/rrsim-smoke ./cmd/rrsim
	/tmp/rrsim-smoke -replay testdata/replay/fixture.ndjson -policy all -m 2 > /tmp/rrsim-replay-1.txt
	/tmp/rrsim-smoke -replay testdata/replay/fixture.ndjson -policy all -m 2 > /tmp/rrsim-replay-2.txt
	cmp /tmp/rrsim-replay-1.txt /tmp/rrsim-replay-2.txt
	/tmp/rrsim-smoke -replay - -policy SRPT -m 2 < testdata/replay/fixture.ndjson > /tmp/rrsim-replay-stdin.txt
	grep -q '^SRPT' /tmp/rrsim-replay-stdin.txt
	rm -f /tmp/rrsim-smoke /tmp/rrsim-replay-1.txt /tmp/rrsim-replay-2.txt /tmp/rrsim-replay-stdin.txt

bench:
	$(GO) test -run xxx -bench . -benchmem .

# Regenerate the committed engine baselines: BENCH_engine.json (ns/op,
# ns/job, allocs/op and B/op for RR and SRPT at n ∈ {1e3..1e6}, m ∈ {1, 8},
# the workspace-vs-fresh and batched-vs-stepped comparisons, single-run
# walls at n ∈ {1e6, 1e7} with the RR n=1e7 < 1s gate, and the sharded
# SRPT speedup row), BENCH_observe.json (the
# n=1e6 streaming-observer vs RecordSegments comparison: ns/op, heap
# churn, peak RSS) and BENCH_stream.json (a 1e7-job streaming JobSource
# replay in a child process whose Maxrss must stay under the
# bounded-memory gate). The writers fail if any grid cell or observer
# path allocates, the n=1e4 workspace speedup drops below 25%, Segment
# recording stops being ≥10x the observer path's heap churn, or the
# streaming replay's peak RSS exceeds its gate.
bench-engine:
	WRITE_BENCH=1 $(GO) test -run 'TestWriteEngineBenchBaseline|TestWriteObserveBenchBaseline|TestWriteStreamBenchBaseline' -v -timeout 30m .

# CI allocation + performance gate: the hot-path alloc budget tests
# (0 allocs/run with a reused workspace, with and without observers
# attached), the bulk-advance ratchet (batched RR ≥2x the reference
# per-epoch engine at n=1e6, ≤10% regression vs the stepped fast loop),
# plus a 100-iteration pass over the workspace grid (-short skips the
# n=1e6 cells the ratchet already covers) and the observers-vs-segments
# comparison so allocs/op regressions surface in the job log without a
# full bench run.
bench-smoke:
	$(GO) test -run 'TestEngineAllocBudget|TestObserverAllocBudget|TestBenchSmokeRatchet' -v .
	$(GO) test -run xxx -short -bench 'BenchmarkEngineWorkspaceGrid|BenchmarkEngineRR$$|BenchmarkEngineFastVsReference|BenchmarkObserverVsSegments' -benchtime=100x -benchmem .

# Regenerate the experiment suite into results/.
suite:
	$(GO) run ./cmd/rrbench -out results -html results/report.html -parallel

clean:
	rm -rf results

// Package rrnorm is a faithful, executable reproduction of
//
//	"Temporal Fairness of Round Robin: Competitive Analysis for Lk-norms
//	 of Flow Time" — Im, Kulkarni, Moseley, SPAA 2015,
//
// as a Go library: an exact event-driven simulator for preemptive
// scheduling on m identical machines with resource augmentation, the
// policies the paper analyzes or cites (RR, SRPT, SJF, SETF, FCFS, WRR,
// LAPS, MLFQ), ℓk-norm flow-time metrics, a certified LP lower bound on the
// optimum (via an exact min-cost-flow solve of the paper's LP relaxation),
// an exact branch-and-bound optimum for small instances, and the paper's
// dual-fitting analysis (α/β variables, Lemmas 1–4) as a runnable
// certificate.
//
// This package is the stable facade; the implementation lives in
// internal/* (see DESIGN.md for the system inventory). Quick start:
//
//	in := rrnorm.FromSpecMust("poisson:n=200,load=0.9,dist=exp", 1)
//	res, _ := rrnorm.Simulate(in, "RR", rrnorm.Options{Machines: 1, Speed: 2})
//	fmt.Println(rrnorm.LkNorm(res.Flow, 2))
package rrnorm

import (
	"context"
	"fmt"

	"rrnorm/internal/batch"
	"rrnorm/internal/core"
	"rrnorm/internal/dual"
	"rrnorm/internal/fast"
	"rrnorm/internal/lp"
	"rrnorm/internal/metrics"
	"rrnorm/internal/policy"
	"rrnorm/internal/workload"
)

// Core model types, re-exported.
type (
	// Job is a single request: released at Release, needing Size units of
	// processing.
	Job = core.Job
	// Instance is a set of jobs.
	Instance = core.Instance
	// Options configures a simulation (machines, speed augmentation,
	// segment recording).
	Options = core.Options
	// Result is a simulated schedule with completions, flows and the rate
	// timeline.
	Result = core.Result
	// Policy is the scheduling-policy interface; see internal/policy for
	// the implementations and internal/core for the contract.
	Policy = core.Policy
	// Certificate is the paper's dual-fitting certificate; see
	// internal/dual.
	Certificate = dual.Certificate
)

// NewInstance builds a normalized instance from jobs.
func NewInstance(jobs []Job) *Instance { return core.NewInstance(jobs) }

// Policies lists the registered policy names
// (FCFS, LAPS, MLFQ, RR, SETF, SJF, SRPT, WRR).
func Policies() []string { return policy.Names() }

// NewPolicy constructs a registered policy by name with default parameters.
func NewPolicy(name string) (Policy, error) { return policy.New(name) }

// EngineKind selects the simulation engine; see Options.Engine. The zero
// value (EngineAuto) uses the event-driven fast engine for structured
// policies (RR, SRPT, SJF, FCFS, StaticPriority) and the step-based
// reference engine otherwise; both produce the same schedules (enforced by
// the differential harness in internal/check).
type EngineKind = core.EngineKind

// Engine selector values for Options.Engine.
const (
	EngineAuto      = core.EngineAuto
	EngineReference = core.EngineReference
	EngineFast      = core.EngineFast
)

// ParseEngineKind parses "auto", "reference"/"ref" or "fast" (as used by
// the CLI -engine flags).
func ParseEngineKind(s string) (EngineKind, error) { return core.ParseEngineKind(s) }

// Simulate runs the named policy on the instance, honoring opts.Engine.
func Simulate(in *Instance, policyName string, opts Options) (*Result, error) {
	p, err := policy.New(policyName)
	if err != nil {
		return nil, err
	}
	return fast.Run(in, p, opts)
}

// SimulateWith runs a caller-provided policy (e.g. a custom core.Policy
// implementation) on the instance, honoring opts.Engine.
func SimulateWith(in *Instance, p Policy, opts Options) (*Result, error) {
	return fast.Run(in, p, opts)
}

// BatchPoint is one (instance, policy, options) simulation of a batch; see
// SimulateBatch. Instances may be shared between points (they are
// read-only during a run); the policy is constructed fresh per point from
// its registered name, so policy state is never shared.
type BatchPoint struct {
	Instance *Instance
	Policy   string
	Options  Options
}

// SimulateBatch runs the points over a bounded worker pool — workers ≤ 0
// means GOMAXPROCS — in which every worker reuses one pooled simulation
// workspace, so peak memory stays O(workers · largest instance) and the
// engine hot path allocates nothing in steady state, for arbitrarily large
// sweep grids. Results are in point order and byte-identical to calling
// Simulate on each point sequentially; the first error by lowest point
// index wins. The experiment sweeps (internal/exp), rrserve's /v1/compare
// and `rrbench -parallel` all run on this path.
func SimulateBatch(points []BatchPoint, workers int) ([]*Result, error) {
	pts := make([]batch.Point, len(points))
	for i, bp := range points {
		p, err := policy.New(bp.Policy)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		pts[i] = batch.Point{Instance: bp.Instance, Policy: p, Options: bp.Options}
	}
	return batch.Simulate(context.Background(), pts, workers)
}

// SimulateSharded runs the named index policy (SRPT, SJF or FCFS) under
// round-robin immediate dispatch: the job with normalized arrival rank g is
// assigned to machine g mod opts.Machines, and each machine runs the policy
// on its own jobs at Machines = 1 — m independent shards executed on up to
// `workers` goroutines (≤ 0 means GOMAXPROCS) and merged deterministically,
// so the result is byte-identical at every worker count. This is a
// different discipline from the global policy on m machines (jobs never
// migrate between machines); the result's Policy field carries a "+shard"
// suffix to keep the two apart. See internal/batch.RunSharded for the
// streaming-observer variant that merges per-shard StreamNorms.
func SimulateSharded(in *Instance, policyName string, opts Options, workers int) (*Result, error) {
	return batch.RunSharded(context.Background(), in, policyName, opts, workers, nil, nil)
}

// Fingerprint returns a canonical SHA-256 digest of (instance, policy,
// options): two calls fingerprint equal iff they describe the same
// simulation, independent of the caller's job order. It is the cache key
// rrserve (internal/serve) uses to memoize and dedupe simulation requests.
func Fingerprint(in *Instance, policyName string, opts Options) string {
	return core.Fingerprint(in, policyName, opts)
}

// LkNorm returns (Σ flows^k)^{1/k}.
func LkNorm(flows []float64, k int) float64 { return metrics.LkNorm(flows, k) }

// KthPowerSum returns Σ flows^k — the quantity the paper's analysis bounds.
func KthPowerSum(flows []float64, k int) float64 { return metrics.KthPowerSum(flows, k) }

// Observer receives a run's event stream (arrivals, rate-constant epochs,
// completions, the finished result) as the engine produces it, so metrics
// can be reduced in a single pass instead of post-processing a recorded
// Segment timeline. Set it via Options.Observer; DESIGN.md §13 has the
// exact callback contract, including the copy-or-drop ownership rule for
// engine-owned slices.
type Observer = core.Observer

// Epoch is one rate-constant interval of a running simulation, as seen by
// an Observer — the streaming counterpart of a recorded Segment.
type Epoch = core.Epoch

// StreamNorm is an Observer that accumulates ℓk norms and k-th power sums
// of flow time online, in O(#ks) state: attach one via Options.Observer
// and a million-job run needs neither Result.Flow post-processing nor a
// Segment timeline.
type StreamNorm = metrics.StreamNorm

// NewStreamNorm returns a StreamNorm tracking the given norm orders.
func NewStreamNorm(ks ...int) *StreamNorm { return metrics.NewStreamNorm(ks...) }

// MultiObserver fans a run's event stream out to several observers: it
// returns nil when none are given and the observer itself when exactly
// one is.
func MultiObserver(obs ...Observer) Observer { return core.Multi(obs...) }

// JobSource is a release-ordered pull iterator of jobs — the streaming
// input both engines accept in place of a materialized Instance. Next
// returns the next job and true, or a zero Job and false at the end of the
// stream (or an error, which ends the run). Jobs must arrive in
// nondecreasing Release order; violations surface as ErrBadSource-wrapped
// errors. internal/trace decodes NDJSON/CSV traces as a JobSource, and
// workload's Stream/Fitted sources generate synthetic ones.
type JobSource = core.JobSource

// StreamResult is the scalar summary of a streaming run: job and event
// counts, makespan and max flow. Per-job data never materializes — attach
// Observers (StreamNorm, timeline, ...) for anything per-completion.
type StreamResult = core.StreamResult

// ErrBadSource wraps every job-validation or source failure surfaced
// during a streaming run (errors.Is-matchable).
var ErrBadSource = core.ErrBadSource

// NewInstanceSource adapts a materialized Instance into a JobSource. A
// streaming run over it is bit-identical to the materialized run of the
// same instance (enforced by the differential wall in internal/check).
func NewInstanceSource(in *Instance) JobSource { return core.NewInstanceSource(in) }

// SimulateStream runs the named policy over a streaming job source,
// honoring opts.Engine. Memory stays bounded by the schedule's alive set
// regardless of how many jobs the source yields: at n=10⁷ the whole run
// fits in a few MB of RSS (BENCH_stream.json) where the materialized
// instance alone would need hundreds.
func SimulateStream(src JobSource, policyName string, opts Options) (StreamResult, error) {
	p, err := policy.New(policyName)
	if err != nil {
		return StreamResult{}, err
	}
	return fast.RunStream(src, p, opts, core.NewWorkspace())
}

// LowerBound returns a certified lower bound on the optimal Σ F^k on m
// unit-speed machines (max of the LP/2 relaxation bound and Σ p^k).
func LowerBound(in *Instance, m, k int) (float64, error) {
	b, err := lp.KPowerLowerBound(in, m, k, lp.Options{})
	if err != nil {
		return 0, err
	}
	return b.Value, nil
}

// Certify runs Round Robin at the paper's Theorem 1 speed 2k(1+10ε) on m
// machines and returns the dual-fitting certificate for the resulting
// schedule.
func Certify(in *Instance, m, k int, eps float64) (*Certificate, error) {
	// The witness observer builds the certificate during the run — no
	// Segment timeline — and produces certificates identical to recording
	// + dual.Build (pinned by the differential tests in internal/check).
	// It needs per-job epochs, so the dispatcher routes it to the
	// reference engine, exactly as RecordSegments was.
	w, err := dual.NewWitnessObserver(k, eps, m)
	if err != nil {
		return nil, err
	}
	if _, err := Simulate(in, "RR", Options{Machines: m, Speed: dual.Eta(k, eps), Observer: w}); err != nil {
		return nil, err
	}
	return w.Certificate()
}

// FractionalFlows computes per-job fractional flow times
// ∫ (remaining fraction) dt from a recorded schedule (RecordSegments).
func FractionalFlows(res *Result) ([]float64, error) { return core.FractionalFlows(res) }

// Gantt renders a recorded schedule as an ASCII chart (one row per job,
// glyph darkness ∝ rate).
func Gantt(res *Result, width int) string { return core.RenderGantt(res, width) }

// TimeStats derives time-average statistics (alive count, utilization,
// busy periods, overload time) from a recorded schedule.
func TimeStats(res *Result) core.TimeStats { return core.ComputeTimeStats(res) }

// WeightedLkNorm returns (Σ w_j F_j^k)^{1/k}; zero weights default to 1.
func WeightedLkNorm(flows, weights []float64, k int) float64 {
	return metrics.WeightedLkNorm(flows, weights, k)
}

// FromSpec builds a workload from a compact textual spec; see
// internal/workload.FromSpec for the grammar (poisson, batch, bursts,
// rrstream, cascade, starvation, staircase, trace, swf, fitted).
func FromSpec(spec string, seed uint64) (*Instance, error) {
	return workload.FromSpec(spec, seed)
}

// FromSpecMust is FromSpec that panics on error — for examples and tests.
func FromSpecMust(spec string, seed uint64) *Instance {
	in, err := workload.FromSpec(spec, seed)
	if err != nil {
		panic(fmt.Sprintf("rrnorm: %v", err))
	}
	return in
}

module rrnorm

go 1.24

package rrnorm_test

import (
	"fmt"
	"testing"

	"rrnorm"
	"rrnorm/internal/bcast"
	"rrnorm/internal/core"
	"rrnorm/internal/dual"
	"rrnorm/internal/exp"
	"rrnorm/internal/fast"
	"rrnorm/internal/lp"
	"rrnorm/internal/mcmf"
	"rrnorm/internal/opt"
	"rrnorm/internal/policy"
	"rrnorm/internal/quantum"
	"rrnorm/internal/spdup"
	"rrnorm/internal/stats"
	"rrnorm/internal/workload"
)

// --- engine/policy micro-benchmarks -----------------------------------------

// benchInstance is a shared 1000-job Poisson workload.
func benchInstance(n int) *core.Instance {
	return workload.PoissonLoad(stats.NewRNG(1), n, 1, 0.9, workload.ExpSizes{M: 1})
}

func benchPolicy(b *testing.B, name string, n, m int) {
	b.Helper()
	in := benchInstance(n)
	p, err := policy.New(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Machines: m, Speed: 1}
	ws := core.NewWorkspace()
	if _, err := core.RunWS(in, p, opts, ws); err != nil { // warm the workspace
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunWS(in, p, opts, ws); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "jobs/op")
}

func BenchmarkEngineRR(b *testing.B)             { benchPolicy(b, "RR", 1000, 1) }
func BenchmarkEngineSRPT(b *testing.B)           { benchPolicy(b, "SRPT", 1000, 1) }
func BenchmarkEngineSETF(b *testing.B)           { benchPolicy(b, "SETF", 1000, 1) }
func BenchmarkEngineFCFS(b *testing.B)           { benchPolicy(b, "FCFS", 1000, 1) }
func BenchmarkEngineMLFQ(b *testing.B)           { benchPolicy(b, "MLFQ", 1000, 1) }
func BenchmarkEngineRRMultiMachine(b *testing.B) { benchPolicy(b, "RR", 1000, 8) }

func BenchmarkEngineRRWithSegments(b *testing.B) {
	in := benchInstance(1000)
	opts := core.Options{Machines: 1, Speed: 1, RecordSegments: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(in, policy.NewRR(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineFastVsReference compares the event-driven fast engine
// against the step-based reference engine on the same RR workloads across
// three decades of instance size. The fast engine is O((n + completions)
// log n); the reference engine recomputes all alive-job rates on every
// event, so the gap widens with the alive-set size (higher load or larger
// n). The README records the measured speedups.
func BenchmarkEngineFastVsReference(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		in := workload.PoissonLoad(stats.NewRNG(1), n, 1, 0.98, workload.ExpSizes{M: 1})
		for _, eng := range []struct {
			name string
			kind core.EngineKind
		}{{"reference", core.EngineReference}, {"fast", core.EngineFast}} {
			b.Run(fmt.Sprintf("n=%d/%s", n, eng.name), func(b *testing.B) {
				opts := core.Options{Machines: 1, Speed: 1, Engine: eng.kind}
				ws := core.NewWorkspace()
				if _, err := fast.RunWS(in, policy.NewRR(), opts, ws); err != nil { // warm the workspace
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fast.RunWS(in, policy.NewRR(), opts, ws); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n), "jobs/op")
			})
		}
	}
}

// --- substrate benchmarks ----------------------------------------------------

func BenchmarkMCMFTransportation(b *testing.B) {
	// 60 jobs × 200 slots transportation problem per iteration.
	rng := stats.NewRNG(2)
	const nJobs, nSlots = 60, 200
	costs := make([][]float64, nJobs)
	for i := range costs {
		costs[i] = make([]float64, nSlots)
		for j := range costs[i] {
			costs[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := mcmf.NewGraph(2+nJobs+nSlots, nJobs+nSlots+nJobs*nSlots)
		var total int64
		for jb := 0; jb < nJobs; jb++ {
			supply := int64(10)
			total += supply
			g.AddEdge(0, 2+jb, supply, 0)
			for sl := 0; sl < nSlots; sl++ {
				g.AddEdge(2+jb, 2+nJobs+sl, supply, costs[jb][sl])
			}
		}
		for sl := 0; sl < nSlots; sl++ {
			g.AddEdge(2+nJobs+sl, 1, 5, 0)
		}
		if _, _, err := g.MinCostFlow(0, 1, total); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLPLowerBound(b *testing.B) {
	in := benchInstance(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.KPowerLowerBound(in, 1, 2, lp.Options{Slots: 300, MaxUnits: 60000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDualCertificate(b *testing.B) {
	in := benchInstance(300)
	res, err := core.Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: dual.Eta(2, 0.05), RecordSegments: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dual.Build(res, 2, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactOPT(b *testing.B) {
	in := workload.Poisson(stats.NewRNG(3), 6, 1, workload.UniformSizes{Lo: 0.5, Hi: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Exact(in, 2, opt.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFacadeCertify(b *testing.B) {
	in := rrnorm.FromSpecMust("poisson:n=100,load=0.9", 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rrnorm.Certify(in, 1, 2, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpdupEQUI(b *testing.B) {
	in := spdup.HostileCascade(7, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spdup.Run(in, spdup.EQUI{}, spdup.Options{Machines: 8, Speed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcastRRRequest(b *testing.B) {
	in := bcast.ZipfPoisson(stats.NewRNG(5), 500, 16, 0.9, 1.1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcast.Run(in, bcast.RRRequest{}, bcast.Options{Speed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantumRR(b *testing.B) {
	in := benchInstance(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quantum.Run(in, quantum.Options{Quantum: 0.1, SwitchCost: 0.001, Speed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per experiment (E1..E17) ----------------------------------
//
// These regenerate each table/figure of the evaluation (DESIGN.md §3) in
// Quick mode; run `rrbench` for the full-size versions.

func BenchmarkExperiments(b *testing.B) {
	for _, e := range exp.All() {
		e := e
		b.Run(e.ID, func(b *testing.B) {
			cfg := exp.Config{Seed: 42, Quick: true}
			for i := 0; i < b.N; i++ {
				tables, err := e.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) == 0 {
					b.Fatal("no tables")
				}
			}
		})
	}
}

// BenchmarkScalingRR characterizes engine scaling across instance sizes.
func BenchmarkScalingRR(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		in := benchInstance(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(in, policy.NewRR(), core.Options{Machines: 1, Speed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
